"""E7 — release-offset ablation: alarms vs schedule tables.

The kernel offers two ways to release the validator's periodic tasks:

* **cyclic alarms**, all expiring on common period boundaries — the
  OSEK baseline, which piles simultaneous releases onto the scheduler
  (preemption, response-time jitter), and
* an AUTOSAR-style **schedule table** with staggered activation offsets,
  which serialises the releases by construction.

Timing jitter matters to the Software Watchdog: the fault hypothesis
margins (``aliveness_margin``, ``max_heartbeats``) must absorb the
release jitter of healthy runnables, so lower jitter permits tighter
hypotheses and therefore faster detection.  This study quantifies the
trade on a three-task workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.traces import heartbeat_gaps, response_times
from ..kernel.clock import ms, seconds
from ..kernel.runnable import Runnable
from ..kernel.scheduler import Kernel
from ..kernel.schedtable import ScheduleTable
from ..kernel.alarms import AlarmTable
from ..kernel.task import Task
from ..kernel.runnable import runnable_sequence_body

#: (task, priority, wcet) — three 10 ms tasks competing for the CPU.
_WORKLOAD = [("Alpha", 7, ms(2)), ("Beta", 6, ms(2)), ("Gamma", 5, ms(2))]
_PERIOD = ms(10)
#: A non-harmonic high-priority interferer (7 ms period) drifts across
#: the 10 ms frame, so each activation sees different interference —
#: that is what creates measurable response-time jitter.
_INTERFERER_PERIOD = ms(7)
_INTERFERER_WCET = ms(1)


@dataclass
class JitterRow:
    """Per-task comparison row."""

    task: str
    release_scheme: str
    preemptions: int
    response_jitter_us: int
    worst_response_us: int
    heartbeat_jitter_us: int


def _build(kernel: Kernel) -> Dict[str, Runnable]:
    runnables = {}
    for name, priority, wcet in _WORKLOAD:
        runnable = Runnable(f"{name}.r", kernel, wcet=wcet)
        runnables[name] = runnable
        kernel.add_task(Task(name, priority, runnable_sequence_body([runnable])))
    interferer = Runnable("Irq.r", kernel, wcet=_INTERFERER_WCET)
    kernel.add_task(Task("Irq", 9, runnable_sequence_body([interferer])))
    alarms = AlarmTable(kernel)
    alarms.alarm_activate_task("IrqA", "Irq").set_rel(
        _INTERFERER_PERIOD, _INTERFERER_PERIOD
    )
    return runnables


def _measure(kernel: Kernel, scheme: str) -> List[JitterRow]:
    rows = []
    for name, _priority, _wcet in _WORKLOAD:
        responses = response_times(kernel.trace, name)
        gaps = heartbeat_gaps(kernel.trace, f"{name}.r")
        rows.append(
            JitterRow(
                task=name,
                release_scheme=scheme,
                preemptions=kernel.tasks[name].preemption_count,
                response_jitter_us=(max(responses) - min(responses))
                if responses else 0,
                worst_response_us=max(responses) if responses else 0,
                heartbeat_jitter_us=(max(gaps) - min(gaps)) if gaps else 0,
            )
        )
    return rows


def run_alarm_release(horizon: int = seconds(2)) -> List[JitterRow]:
    """Baseline: every task released by its own alarm at the common
    period boundary (simultaneous releases)."""
    kernel = Kernel()
    _build(kernel)
    alarms = AlarmTable(kernel)
    for name, _priority, _wcet in _WORKLOAD:
        alarms.alarm_activate_task(f"{name}A", name).set_rel(_PERIOD, _PERIOD)
    kernel.run_until(horizon)
    return _measure(kernel, "alarms (synchronous)")


def run_schedule_table_release(
    horizon: int = seconds(2), *, stagger: int = ms(3)
) -> List[JitterRow]:
    """Schedule table with releases staggered by ``stagger``."""
    kernel = Kernel()
    _build(kernel)
    table = ScheduleTable("rig", kernel, period=_PERIOD)
    for index, (name, _priority, _wcet) in enumerate(_WORKLOAD):
        table.add_task_activation(index * stagger, name)
    table.start_rel(_PERIOD)
    kernel.run_until(horizon)
    return _measure(kernel, f"schedule table (+{stagger // 1000} ms offsets)")


def run_jitter_ablation(horizon: int = seconds(2)) -> List[Dict[str, object]]:
    """Both schemes side by side, one row per (task, scheme)."""
    rows = run_alarm_release(horizon) + run_schedule_table_release(horizon)
    return [row.__dict__ for row in rows]
