"""E3 — detection latency study.

Measures, per fault class, the time from injection to first detection
for the Software Watchdog, and the effect of the design ablation called
out in DESIGN.md: checking counters "shortly before the next period
begins" (the paper's choice) versus flagging an arrival-rate overflow
eagerly on the offending heartbeat itself.

Expected shape: period-end checking bounds aliveness latency by roughly
one aliveness monitoring period; eager arrival detection cuts
arrival-rate latency below one period because the overflowing heartbeat
itself triggers the error.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.metrics import LatencyStats
from ..core.reports import ErrorType
from ..faults.campaigns import Campaign, CampaignResult, CampaignSystem, watchdog_detector
from ..faults.models import FaultTarget
from ..faults.registry import FaultSpec, SystemSpec, register_system
from ..kernel.clock import ms, seconds
from ..platform.application import (
    Application,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)
from ..platform.ecu import Ecu
from ..platform.fmf import FmfPolicy


def _mapping() -> TaskMapping:
    app = Application("SafeSpeed")
    swc = SoftwareComponent("SpeedControl")
    swc.add(RunnableSpec("GetSensorValue", wcet=ms(1)))
    swc.add(RunnableSpec("SAFE_CC_process", wcet=ms(2)))
    swc.add(RunnableSpec("Speed_process", wcet=ms(1)))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("SafeSpeedTask", priority=5, period=ms(10)))
    mapping.map_sequence(
        "SafeSpeedTask", ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
    )
    return mapping


@register_system("latency")
def build_latency_system(
    eager: bool = False, check_strategy: str = "wheel"
) -> CampaignSystem:
    """One fresh system with per-error-type detection channels."""
    ecu = Ecu(
        "central",
        _mapping(),
        watchdog_period=ms(10),
        fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                             max_app_restarts=10**6),
        fmf_auto_treatment=False,
        eager_arrival_detection=eager,
        check_strategy=check_strategy,
    )
    return CampaignSystem(
        target=FaultTarget.from_ecu(ecu),
        detectors=[
            watchdog_detector(ecu.watchdog),
            watchdog_detector(ecu.watchdog, "SW:aliveness",
                              ErrorType.ALIVENESS),
            watchdog_detector(ecu.watchdog, "SW:arrival_rate",
                              ErrorType.ARRIVAL_RATE),
            watchdog_detector(ecu.watchdog, "SW:program_flow",
                              ErrorType.PROGRAM_FLOW),
        ],
        run_until=ecu.run_until,
        now=lambda: ecu.now,
        context={"ecu": ecu},
    )


_FAULTS = [
    ("aliveness (blocked runnable)", "SW:aliveness",
     FaultSpec.of("blocked", runnable="SAFE_CC_process")),
    ("aliveness (slowed task)", "SW:aliveness",
     FaultSpec.of("time_scalar", task="SafeSpeedTask", scalar=4.0)),
    ("arrival rate (loop counter)", "SW:arrival_rate",
     FaultSpec.of("loop_count", runnable="GetSensorValue", repeat=4)),
    ("program flow (invalid branch)", "SW:program_flow",
     FaultSpec.of("invalid_branch", chart="SafeSpeedTask", at_step=1,
                  branch_to="Speed_process")),
]


def run_latency_study(
    *,
    repetitions: int = 3,
    warmup: int = ms(300),
    observation: int = seconds(1),
    check_strategy: str = "wheel",
    workers: int = 1,
    telemetry=None,
) -> List[Dict[str, object]]:
    """Latency per fault class × check-mode; one table row each.

    ``check_strategy`` selects the HBM cycle implementation ("wheel" or
    "scan"); the two are differential-tested to emit identical errors,
    so latency figures must not depend on it — running the study under
    both is the end-to-end cross-check of that property.

    ``workers=N`` parallelizes each fault's repetitions across worker
    processes (``0`` = ``os.cpu_count()``); rows are identical to the
    serial study.
    """
    rows: List[Dict[str, object]] = []
    for eager in (False, True):
        campaign = Campaign(
            SystemSpec.of("latency", eager=eager,
                          check_strategy=check_strategy),
            warmup=warmup, observation=observation,
            telemetry=telemetry,
        )
        for label, channel, factory in _FAULTS:
            result: CampaignResult = campaign.execute(
                [factory] * repetitions, workers=workers
            )
            stats: Optional[LatencyStats] = LatencyStats.from_values(
                result.latencies(channel)
            )
            rows.append(
                {
                    "fault": label,
                    "strategy": check_strategy,
                    "check_mode": "eager-arrival" if eager else "period-end",
                    "detected": result.coverage(channel),
                    "mean_latency_ms": (
                        None if stats is None else stats.mean / 1000.0
                    ),
                    "p95_latency_ms": (
                        None if stats is None else stats.p95 / 1000.0
                    ),
                }
            )
    return rows
