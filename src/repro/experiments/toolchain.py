"""F3 — the model-based development tool chain (Figure 3).

Reproduces the paper's four-step process as an executable pipeline:

1. **Functional model** — declare applications / runnables (step 1),
2. **Mapping onto the system architecture** — place runnables on tasks,
   assign rate-monotonic priorities, and prove schedulability with
   response-time analysis (step 2),
3. **Virtual prototype** — build the mapped system onto the simulated
   kernel, including the auto-generated watchdog hypothesis and glue
   code (step 3),
4. **Target execution** — run it and verify the analytic response-time
   bounds against the simulated ones (step 4's validation role).

Returns a report usable both as a benchmark target and as evidence that
analysis and simulation agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.traces import response_times
from ..kernel.clock import ms, seconds
from ..kernel.scheduler import Kernel
from ..platform.application import (
    Application,
    RunnableSpec,
    SoftwareComponent,
    SystemBuilder,
    TaskMapping,
    TaskSpec,
)
from ..platform.schedulability import (
    TaskTiming,
    assign_rate_monotonic_priorities,
    is_schedulable,
    response_time_analysis,
    total_utilization,
)


@dataclass
class ToolchainReport:
    """Outcome of one pipeline run."""

    utilization: float
    schedulable: bool
    rta_bounds: Dict[str, Optional[int]]
    observed_worst: Dict[str, int] = field(default_factory=dict)
    bounds_hold: bool = True
    runnable_count: int = 0
    task_count: int = 0
    hypothesis_size: int = 0
    #: wdlint result over the auto-generated hypothesis (step 2.5): the
    #: generated configuration must lint clean before it is built.
    lint_ok: bool = True
    lint_diagnostics: List[str] = field(default_factory=list)


def functional_model() -> List[Application]:
    """Step 1: the functional model — three ISS applications."""
    specs = {
        "SafeSpeed": [("GetSensorValue", ms(1)), ("SAFE_CC_process", ms(2)),
                      ("Speed_process", ms(1))],
        "SafeLane": [("GetLanePosition", ms(1)), ("LDW_process", ms(1.5)),
                     ("Warn_process", ms(0.5))],
        "SteerByWire": [("ReadHandwheel", ms(0.2)), ("SteeringControl", ms(0.6)),
                        ("ApplySteering", ms(0.2))],
    }
    applications = []
    for app_name, runnables in specs.items():
        app = Application(app_name)
        swc = SoftwareComponent(f"{app_name}Swc")
        for name, wcet in runnables:
            swc.add(RunnableSpec(name, wcet=wcet))
        app.add_component(swc)
        applications.append(app)
    return applications


def map_onto_architecture(applications: List[Application]) -> TaskMapping:
    """Step 2: place runnables on tasks with RM priorities."""
    periods = {"SafeSpeed": ms(10), "SafeLane": ms(20), "SteerByWire": ms(5)}
    provisional = [
        TaskTiming(
            name=f"{app.name}Task",
            wcet=sum(r.wcet for c in app.components for r in c.runnables),
            period=periods[app.name],
            priority=0,
        )
        for app in applications
    ]
    prioritised = {
        t.name: t.priority for t in assign_rate_monotonic_priorities(provisional)
    }
    mapping = TaskMapping(applications)
    for app in applications:
        task_name = f"{app.name}Task"
        mapping.add_task(
            TaskSpec(task_name, priority=prioritised[task_name],
                     period=periods[app.name])
        )
        mapping.map_sequence(task_name, app.runnable_names())
    return mapping


def run_toolchain(*, horizon: int = seconds(2)) -> ToolchainReport:
    """Execute the complete pipeline and cross-validate RTA vs simulation."""
    from ..lint import lint_hypothesis

    applications = functional_model()
    mapping = map_onto_architecture(applications)

    timings = mapping.task_timings()
    report = ToolchainReport(
        utilization=total_utilization(timings),
        schedulable=is_schedulable(timings),
        rta_bounds=response_time_analysis(timings),
    )

    # Step 2.5: lint the auto-generated hypothesis against the mapping
    # it was derived from — the EASIS tool chain rejects a configuration
    # here, before any code generation.
    builder = SystemBuilder(mapping, watchdog_period=ms(10))
    lint_report = lint_hypothesis(
        builder.derive_hypothesis(),
        mapping=mapping,
        watchdog_period=ms(10),
        source="toolchain",
    )
    report.lint_ok = lint_report.ok
    report.lint_diagnostics = [str(d) for d in lint_report.diagnostics]

    kernel = Kernel()
    system = builder.build(kernel)
    report.runnable_count = len(system.runnables)
    report.task_count = len(system.tasks)
    report.hypothesis_size = len(system.hypothesis.runnables)
    kernel.run_until(horizon)

    for timing in timings:
        observed = response_times(kernel.trace, timing.name)
        if not observed:
            continue
        worst = max(observed)
        report.observed_worst[timing.name] = worst
        bound = report.rta_bounds[timing.name]
        if bound is None or worst > bound:
            report.bounds_hold = False
    return report
