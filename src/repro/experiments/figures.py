"""Reproduction of the paper's evaluation figures (§4.5).

Each ``run_figure*`` function executes one evaluation case on the HIL
validator and returns a :class:`FigureResult` holding the captured
ControlDesk-style series, the key measured quantities, and a rendered
text version of the figure.  The x-axis sampling matches the paper: one
sample per 10 ms.

* **Figure 5** — test with injected aliveness error: a "time scalar ...
  connected to a slider instrument" slows the SafeSpeed task; the
  aliveness counters starve and ``AM Result`` steps up.
* **Figure 5b** (stated in the text) — arrival-rate error via a
  manipulated loop counter: the runnable repeats, ``ARM Result`` steps.
* **Figure 5c** (stated in the text) — control-flow error via an
  invalid execution branch: ``PFC Result`` steps.
* **Figure 6** — collaboration of the units: an invalid branch provokes
  program-flow errors *and* starves the bypassed runnable; with the PFC
  threshold at 3 the task state flips to faulty after the third flow
  error while only a single accumulated aliveness error is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.plots import render_panels
from ..core.reports import ErrorType
from ..faults.injector import ErrorInjector
from ..faults.models import (
    FaultTarget,
    InvalidBranchFault,
    LoopCountFault,
    TimeScalarFault,
)
from ..kernel.clock import ms, seconds
from ..platform.fmf import FmfPolicy
from ..validator.hil import HilValidator

#: FMF configuration for figure runs: faults are recorded but no
#: automatic treatment interferes with the captured counter traces.
_OBSERVATION_POLICY = FmfPolicy(ecu_faulty_task_threshold=10**6,
                                max_app_restarts=10**6)


@dataclass
class FigureResult:
    """Everything one evaluation case produced."""

    figure: str
    description: str
    series: Dict[str, List[float]] = field(default_factory=dict)
    sample_times: List[int] = field(default_factory=list)
    measurements: Dict[str, object] = field(default_factory=dict)
    rendered: str = ""

    def measurement(self, key: str) -> object:
        return self.measurements[key]


def _build_rig(*, focus_runnable: str = "SAFE_CC_process",
               auto_treatment: bool = False) -> HilValidator:
    rig = HilValidator(
        fmf_policy=_OBSERVATION_POLICY,
        fmf_auto_treatment=auto_treatment,
    )
    rig.probe_counters(focus_runnable)
    return rig


def _collect(rig: HilValidator, figure: str, description: str,
             keys: List[str]) -> FigureResult:
    result = FigureResult(figure=figure, description=description)
    for key in keys:
        series = rig.capture.get(key)
        result.series[key] = list(series.values)
        result.sample_times = list(series.times)
    watchdog = rig.ecu.watchdog
    result.measurements.update(
        aliveness_errors=watchdog.detected[ErrorType.ALIVENESS],
        arrival_rate_errors=watchdog.detected[ErrorType.ARRIVAL_RATE],
        program_flow_errors=watchdog.detected[ErrorType.PROGRAM_FLOW],
    )
    result.rendered = render_panels(
        result.series, title=f"{figure}: {description}"
    )
    return result


def run_figure5(
    *,
    warmup: int = seconds(2),
    faulty_window: int = seconds(2),
    recovery: int = seconds(1),
    time_scalar: float = 4.0,
) -> FigureResult:
    """Figure 5: test with injected aliveness error.

    The SafeSpeed task's release period is scaled by ``time_scalar``
    (the slider), heartbeats per monitoring period fall below the
    hypothesis minimum, and the aliveness-monitoring result counts up.
    """
    rig = _build_rig()
    injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))
    fault = TimeScalarFault("SafeSpeedTask", scalar=time_scalar)
    rig.start()
    injector.inject_at(warmup, fault, restore_at=warmup + faulty_window)
    rig.run(warmup + faulty_window + recovery)

    result = _collect(
        rig,
        "Figure 5",
        "test with injected aliveness error",
        ["SAFE_CC_process.AC", "SAFE_CC_process.CCA", "AM_Result"],
    )
    am = result.series["AM_Result"]
    samples_per_tick = ms(10)
    before = am[int(warmup / samples_per_tick) - 2]
    after = am[int((warmup + faulty_window) / samples_per_tick) - 2]
    result.measurements.update(
        errors_before_injection=before,
        errors_during_fault=after - before,
        errors_after_recovery=am[-1] - after,
        injected_at=warmup,
        restored_at=warmup + faulty_window,
    )
    return result


def run_figure5b(
    *,
    warmup: int = seconds(2),
    faulty_window: int = seconds(2),
    recovery: int = seconds(1),
    repeat: int = 4,
) -> FigureResult:
    """Figure 5b (stated): test with injected arrival-rate error.

    A manipulated loop counter repeats ``GetSensorValue`` within each
    activation — more aliveness indications per period than hypothesised.
    """
    rig = _build_rig(focus_runnable="GetSensorValue")
    injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))
    fault = LoopCountFault("GetSensorValue", repeat=repeat)
    rig.start()
    injector.inject_at(warmup, fault, restore_at=warmup + faulty_window)
    rig.run(warmup + faulty_window + recovery)

    result = _collect(
        rig,
        "Figure 5b",
        "test with injected arrival rate error",
        ["GetSensorValue.ARC", "GetSensorValue.CCAR", "ARM_Result"],
    )
    arm = result.series["ARM_Result"]
    samples_per_tick = ms(10)
    before = arm[int(warmup / samples_per_tick) - 2]
    after = arm[int((warmup + faulty_window) / samples_per_tick) - 2]
    result.measurements.update(
        errors_before_injection=before,
        errors_during_fault=after - before,
        errors_after_recovery=arm[-1] - after,
    )
    return result


def run_figure5c(
    *,
    warmup: int = seconds(2),
    faulty_window: int = seconds(2),
    recovery: int = seconds(1),
) -> FigureResult:
    """Figure 5c (stated): test with injected control-flow error.

    An invalid execution branch jumps from ``GetSensorValue`` straight
    to ``Speed_process``; the look-up table flags every occurrence.
    """
    rig = _build_rig()
    injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))
    fault = InvalidBranchFault("SafeSpeedTask", at_step=1,
                               branch_to="Speed_process")
    rig.start()
    injector.inject_at(warmup, fault, restore_at=warmup + faulty_window)
    rig.run(warmup + faulty_window + recovery)

    result = _collect(
        rig,
        "Figure 5c",
        "test with injected control flow error",
        ["PFC_Result", "AM_Result"],
    )
    pfc = result.series["PFC_Result"]
    samples_per_tick = ms(10)
    before = pfc[int(warmup / samples_per_tick) - 2]
    after = pfc[int((warmup + faulty_window) / samples_per_tick) - 2]
    result.measurements.update(
        errors_before_injection=before,
        errors_during_fault=after - before,
        errors_after_recovery=pfc[-1] - after,
    )
    return result


def run_figure6(
    *,
    warmup: int = seconds(2),
    observe: int = ms(400),
    pfc_threshold: int = 3,
) -> FigureResult:
    """Figure 6: collaboration of the fault detection units.

    The aliveness errors observed by the heartbeat monitoring unit are
    actually *caused* by a program-flow fault: the invalid branch
    bypasses ``SAFE_CC_process``, so PFC errors accumulate once per
    activation (every 10 ms) while aliveness errors accumulate only once
    per aliveness monitoring period (every ~20 ms, and only for the
    bypassed runnable).  With the program-flow threshold at
    ``pfc_threshold`` the task state flips to faulty after the third
    flow error — at which point only one accumulated aliveness error has
    been reported, identifying the flow fault as the root cause.
    """
    rig = _build_rig(auto_treatment=False)
    rig.ecu.watchdog.tsi.thresholds.per_type[ErrorType.PROGRAM_FLOW] = pfc_threshold
    injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))
    fault = InvalidBranchFault("SafeSpeedTask", at_step=1,
                               branch_to="Speed_process")
    rig.start()
    injector.inject_at(warmup, fault)
    rig.run(warmup + observe)

    result = _collect(
        rig,
        "Figure 6",
        "collaboration of fault detection units",
        ["PFC_Result", "AM_Result", "TaskState_SafeSpeed"],
    )
    watchdog = rig.ecu.watchdog
    fault_events = watchdog.tsi.faulty_tasks
    task_fault_time: Optional[int] = None
    pfc_at_fault = am_at_fault = None
    if "SafeSpeedTask" in fault_events:
        event = fault_events["SafeSpeedTask"]
        task_fault_time = event.time
        vector = event.error_vector
        pfc_at_fault = sum(
            counts.get(ErrorType.PROGRAM_FLOW, 0) for counts in vector.values()
        )
        am_at_fault = sum(
            counts.get(ErrorType.ALIVENESS, 0) for counts in vector.values()
        )
    result.measurements.update(
        pfc_threshold=pfc_threshold,
        task_fault_time=task_fault_time,
        pfc_errors_at_task_fault=pfc_at_fault,
        aliveness_errors_at_task_fault=am_at_fault,
        task_faulty=task_fault_time is not None,
    )
    return result
