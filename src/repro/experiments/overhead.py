"""E2 — overhead study: look-up table vs signatures, passive vs polling.

Quantifies the two design arguments of §3.2:

1. **Program flow checking**: the look-up-table approach against a
   faithful CFCSS implementation, in dynamic instrumentation operations
   per executed basic block and in static modification sites
   (:func:`flow_checking_rows`).
2. **Watchdog service cost**: the check task's share of consumed CPU as
   a function of its period and per-cycle cost
   (:func:`watchdog_cpu_rows`), plus the passive-heartbeat vs
   active-polling bookkeeping comparison (:func:`passive_vs_polling_rows`).
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.overhead import compare_flow_checking, watchdog_cpu_share
from ..kernel.clock import ms, seconds
from ..platform.application import (
    Application,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)
from ..platform.ecu import Ecu

#: The SafeSpeed runnable sequence used throughout the study.
_SEQUENCE = ["GetSensorValue", "SAFE_CC_process", "Speed_process"]


def flow_checking_rows(
    *,
    blocks_per_runnable: int = 10,
    executions: int = 200,
) -> List[Dict[str, object]]:
    """CFCSS vs look-up table on the SafeSpeed-shaped workload."""
    return compare_flow_checking(
        _SEQUENCE,
        blocks_per_runnable=blocks_per_runnable,
        executions=executions,
    )


def _mapping() -> TaskMapping:
    app = Application("SafeSpeed")
    swc = SoftwareComponent("SpeedControl")
    for name, wcet in zip(_SEQUENCE, (ms(1), ms(2), ms(1))):
        swc.add(RunnableSpec(name, wcet=wcet))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("SafeSpeedTask", priority=5, period=ms(10)))
    mapping.map_sequence("SafeSpeedTask", _SEQUENCE)
    return mapping


def watchdog_cpu_rows(
    *,
    periods: List[int] = None,
    check_costs: List[int] = None,
    horizon: int = seconds(5),
) -> List[Dict[str, object]]:
    """CPU share of the watchdog check task across configurations.

    Expected shape: overhead grows linearly with check cost and
    inversely with the check period; at the paper-like operating point
    (10 ms period, tens of microseconds per check) it stays well below
    one percent of consumed CPU.
    """
    periods = periods or [ms(5), ms(10), ms(20), ms(50)]
    check_costs = check_costs or [10, 50, 200]
    rows: List[Dict[str, object]] = []
    for period in periods:
        for cost in check_costs:
            ecu = Ecu(
                "central",
                _mapping(),
                watchdog_period=period,
                watchdog_check_cost=cost,
            )
            ecu.run_until(horizon)
            rows.append(
                {
                    "watchdog_period_ms": period / 1000.0,
                    "check_cost_us": cost,
                    "cpu_share": watchdog_cpu_share(
                        ecu.kernel, ecu.binding.task_name
                    ),
                    "utilization": ecu.kernel.utilization(),
                    "false_positives": ecu.watchdog.detection_count(),
                }
            )
    return rows


def passive_vs_polling_rows(
    *,
    horizon: int = seconds(5),
    runnables: int = 3,
    watchdog_period: int = ms(10),
    task_period: int = ms(10),
) -> List[Dict[str, object]]:
    """Bookkeeping operations: passive heartbeats vs active polling.

    The paper "chose a passive approach to record and monitor the
    runnable updates" (§3.2.1).  The alternative — the watchdog actively
    interrogating every runnable's state each cycle — costs one probe
    per (runnable × cycle) regardless of activity, while the passive
    design costs one counter increment per actual execution plus one
    bounds check per (runnable × period expiry).
    """
    cycles = horizon // watchdog_period
    executions_per_runnable = horizon // task_period
    passive_ops = (
        runnables * executions_per_runnable  # heartbeat increments
        + runnables * cycles  # per-cycle counter checks
    )
    polling_ops = runnables * cycles * 2  # query + compare per runnable
    # With many idle/slow runnables the polling cost is unchanged while
    # the passive cost falls with actual activity; show a slow variant.
    slow_passive_ops = (
        runnables * (horizon // (task_period * 10)) + runnables * cycles
    )
    return [
        {
            "design": "passive heartbeats (paper)",
            "ops": passive_ops,
            "scenario": "nominal 10 ms task",
        },
        {
            "design": "active polling",
            "ops": polling_ops,
            "scenario": "nominal 10 ms task",
        },
        {
            "design": "passive heartbeats (paper)",
            "ops": slow_passive_ops,
            "scenario": "slow 100 ms task",
        },
        {
            "design": "active polling",
            "ops": polling_ops,
            "scenario": "slow 100 ms task",
        },
    ]
