"""E2 — overhead study: look-up table vs signatures, passive vs polling.

Quantifies the two design arguments of §3.2:

1. **Program flow checking**: the look-up-table approach against a
   faithful CFCSS implementation, in dynamic instrumentation operations
   per executed basic block and in static modification sites
   (:func:`flow_checking_rows`).
2. **Watchdog service cost**: the check task's share of consumed CPU as
   a function of its period and per-cycle cost
   (:func:`watchdog_cpu_rows`), plus the passive-heartbeat vs
   active-polling bookkeeping comparison (:func:`passive_vs_polling_rows`).
3. **Check-cycle scaling**: per-cycle cost of the HBM check itself —
   the legacy full scan against the expiry-wheel strategy — as the
   number of monitored-but-undue runnables grows
   (:func:`check_cycle_scaling_rows`).
4. **Campaign scaling**: wall-clock throughput of the E1 injection
   campaign as worker processes are added
   (:func:`campaign_scaling_rows`).
"""

from __future__ import annotations

import time as _time
from typing import Dict, List

from ..analysis.overhead import compare_flow_checking, watchdog_cpu_share
from ..core.heartbeat import HeartbeatMonitoringUnit
from ..core.hypothesis import FaultHypothesis, RunnableHypothesis
from ..kernel.clock import ms, seconds
from ..platform.application import (
    Application,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)
from ..platform.ecu import Ecu

#: The SafeSpeed runnable sequence used throughout the study.
_SEQUENCE = ["GetSensorValue", "SAFE_CC_process", "Speed_process"]


def flow_checking_rows(
    *,
    blocks_per_runnable: int = 10,
    executions: int = 200,
) -> List[Dict[str, object]]:
    """CFCSS vs look-up table on the SafeSpeed-shaped workload."""
    return compare_flow_checking(
        _SEQUENCE,
        blocks_per_runnable=blocks_per_runnable,
        executions=executions,
    )


def _mapping() -> TaskMapping:
    app = Application("SafeSpeed")
    swc = SoftwareComponent("SpeedControl")
    for name, wcet in zip(_SEQUENCE, (ms(1), ms(2), ms(1))):
        swc.add(RunnableSpec(name, wcet=wcet))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("SafeSpeedTask", priority=5, period=ms(10)))
    mapping.map_sequence("SafeSpeedTask", _SEQUENCE)
    return mapping


def watchdog_cpu_rows(
    *,
    periods: List[int] = None,
    check_costs: List[int] = None,
    horizon: int = seconds(5),
) -> List[Dict[str, object]]:
    """CPU share of the watchdog check task across configurations.

    Expected shape: overhead grows linearly with check cost and
    inversely with the check period; at the paper-like operating point
    (10 ms period, tens of microseconds per check) it stays well below
    one percent of consumed CPU.
    """
    periods = periods or [ms(5), ms(10), ms(20), ms(50)]
    check_costs = check_costs or [10, 50, 200]
    rows: List[Dict[str, object]] = []
    for period in periods:
        for cost in check_costs:
            ecu = Ecu(
                "central",
                _mapping(),
                watchdog_period=period,
                watchdog_check_cost=cost,
            )
            ecu.run_until(horizon)
            rows.append(
                {
                    "watchdog_period_ms": period / 1000.0,
                    "check_cost_us": cost,
                    "cpu_share": watchdog_cpu_share(
                        ecu.kernel, ecu.binding.task_name
                    ),
                    "utilization": ecu.kernel.utilization(),
                    "false_positives": ecu.watchdog.detection_count(),
                }
            )
    return rows


def _staggered_unit(
    runnables: int, period: int, strategy: str, telemetry=None
) -> HeartbeatMonitoringUnit:
    """An HBM unit with ``runnables`` healthy runnables whose monitoring
    periods are phase-staggered so roughly ``runnables / period`` checks
    fall due on every cycle (instead of all of them every ``period``
    cycles)."""
    hyp = FaultHypothesis()
    for i in range(runnables):
        hyp.add_runnable(
            RunnableHypothesis(
                f"R{i:05d}",
                task=f"T{i % 8}",
                aliveness_period=period,
                min_heartbeats=0,  # healthy by construction: no errors
                arrival_period=period,
                max_heartbeats=1 << 30,
            )
        )
    unit = HeartbeatMonitoringUnit(hyp, strategy=strategy, telemetry=telemetry)
    # Spread the deadline phases: re-arming slot i at warm-up cycle
    # i % period staggers expiries uniformly across the period.
    for c in range(period):
        for i in range(c, runnables, period):
            unit.set_activation_status(unit.names[i], False)
            unit.set_activation_status(unit.names[i], True)
        unit.cycle(time=c)
    return unit


def check_cycle_scaling_rows(
    *,
    runnable_counts: List[int] = None,
    period: int = 100,
    cycles: int = 200,
) -> List[Dict[str, object]]:
    """Per-cycle HBM check cost: full scan vs expiry wheel.

    Every configuration monitors ``n`` healthy runnables whose periods
    expire phase-staggered, so about ``n / period`` checks are due per
    cycle (1 % at the default ``period=100``).  The scan strategy visits
    all ``n`` slots every cycle regardless; the wheel visits only the
    due ones, so its per-cycle cost is independent of the undue
    population.  ``visits_per_cycle`` is the deterministic operation
    count, ``us_per_cycle`` the measured wall-clock cost.
    """
    runnable_counts = runnable_counts or [100, 1000]
    rows: List[Dict[str, object]] = []
    for n in runnable_counts:
        for strategy in ("scan", "wheel"):
            unit = _staggered_unit(n, period, strategy)
            visits_before = unit.slots_visited
            cycles_before = unit.cycle_count
            start = _time.perf_counter()
            for c in range(cycles):
                unit.cycle(time=cycles_before + c)
            elapsed = _time.perf_counter() - start
            rows.append(
                {
                    "runnables": n,
                    "strategy": strategy,
                    "due_per_cycle": round(n / period, 2),
                    "visits_per_cycle": round(
                        (unit.slots_visited - visits_before) / cycles, 2
                    ),
                    "us_per_cycle": round(1e6 * elapsed / cycles, 2),
                }
            )
    return rows


def campaign_scaling_rows(
    *,
    worker_counts: List[int] = None,
    repetitions: int = 3,
    warmup: int = ms(300),
    observation: int = ms(500),
) -> List[Dict[str, object]]:
    """E1 campaign throughput: serial vs N worker processes.

    Every injection experiment is an independent fresh system, so the
    campaign is embarrassingly parallel; with enough cores, throughput
    scales near-linearly until runs outnumber workers.  On a small
    machine the table still verifies the parallel path end to end —
    ``speedup_vs_serial`` just saturates at the core count.
    """
    from ..faults.campaigns import Campaign
    from .coverage import standard_fault_specs

    worker_counts = worker_counts or [1, 2, 4]
    specs = standard_fault_specs(repetitions)
    rows: List[Dict[str, object]] = []
    serial_elapsed: float = 0.0
    for workers in worker_counts:
        campaign = Campaign("coverage", warmup=warmup, observation=observation)
        start = _time.perf_counter()
        result = campaign.execute(specs, workers=workers)
        elapsed = _time.perf_counter() - start
        if workers == 1:
            serial_elapsed = elapsed
        rows.append(
            {
                "workers": workers,
                "runs": len(result.runs),
                "wall_s": round(elapsed, 3),
                "runs_per_s": round(len(result.runs) / elapsed, 1),
                "speedup_vs_serial": (
                    round(serial_elapsed / elapsed, 2) if serial_elapsed else None
                ),
            }
        )
    return rows


def passive_vs_polling_rows(
    *,
    horizon: int = seconds(5),
    runnables: int = 3,
    watchdog_period: int = ms(10),
    task_period: int = ms(10),
) -> List[Dict[str, object]]:
    """Bookkeeping operations: passive heartbeats vs active polling.

    The paper "chose a passive approach to record and monitor the
    runnable updates" (§3.2.1).  The alternative — the watchdog actively
    interrogating every runnable's state each cycle — costs one probe
    per (runnable × cycle) regardless of activity, while the passive
    design costs one counter increment per actual execution plus one
    bounds check per (runnable × period expiry).
    """
    cycles = horizon // watchdog_period
    executions_per_runnable = horizon // task_period
    passive_ops = (
        runnables * executions_per_runnable  # heartbeat increments
        + runnables * cycles  # per-cycle counter checks
    )
    polling_ops = runnables * cycles * 2  # query + compare per runnable
    # With many idle/slow runnables the polling cost is unchanged while
    # the passive cost falls with actual activity; show a slow variant.
    slow_passive_ops = (
        runnables * (horizon // (task_period * 10)) + runnables * cycles
    )
    return [
        {
            "design": "passive heartbeats (paper)",
            "ops": passive_ops,
            "scenario": "nominal 10 ms task",
        },
        {
            "design": "active polling",
            "ops": polling_ops,
            "scenario": "nominal 10 ms task",
        },
        {
            "design": "passive heartbeats (paper)",
            "ops": slow_passive_ops,
            "scenario": "slow 100 ms task",
        },
        {
            "design": "active polling",
            "ops": polling_ops,
            "scenario": "slow 100 ms task",
        },
    ]
