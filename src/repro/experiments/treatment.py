"""E4 — fault-treatment escalation study (§3.4).

Sweeps the TSI threshold and the FMF restart budget under a permanent
runnable fault and records the escalation chain: runnable errors → task
faulty → application restart → (budget exhausted) → ECU software reset.

Expected shape:

* time-to-task-fault grows linearly with the TSI threshold (each error
  needs one aliveness monitoring period),
* with a permanent fault, restarts never heal the system, so every
  restart budget eventually escalates to an ECU reset; a larger budget
  delays the first reset proportionally,
* with a *transient* fault shorter than the detection-to-restart chain,
  one restart heals the system and no reset ever happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..faults.models import BlockedRunnableFault, FaultTarget
from ..kernel.clock import ms, seconds
from ..platform.application import (
    Application,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)
from ..platform.ecu import Ecu
from ..platform.fmf import FmfPolicy, TreatmentAction


def _mapping() -> TaskMapping:
    app = Application("SafeSpeed")
    swc = SoftwareComponent("SpeedControl")
    swc.add(RunnableSpec("GetSensorValue", wcet=ms(1)))
    swc.add(RunnableSpec("SAFE_CC_process", wcet=ms(2)))
    swc.add(RunnableSpec("Speed_process", wcet=ms(1)))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("SafeSpeedTask", priority=5, period=ms(10)))
    mapping.map_sequence(
        "SafeSpeedTask", ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
    )
    return mapping


@dataclass
class ThresholdRow:
    """One row of the threshold sweep."""

    threshold: int
    time_to_task_fault_ms: Optional[float]
    errors_at_fault: int


def run_threshold_sweep(
    thresholds: List[int] = (1, 2, 3, 4, 6),
    *,
    warmup: int = ms(300),
    observation: int = seconds(3),
) -> List[ThresholdRow]:
    """Time from injection to the task-faulty declaration per threshold."""
    rows: List[ThresholdRow] = []
    for threshold in thresholds:
        ecu = Ecu(
            "central",
            _mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                                 max_app_restarts=10**6),
            fmf_auto_treatment=False,
        )
        ecu.watchdog.tsi.thresholds.default = threshold
        fault_times: List[int] = []
        ecu.watchdog.add_task_fault_listener(
            lambda event, log=fault_times: log.append(event.time)
        )
        ecu.run_until(warmup)
        inject_time = ecu.now
        BlockedRunnableFault("SAFE_CC_process").inject(FaultTarget.from_ecu(ecu))
        ecu.run_until(inject_time + observation)
        if fault_times:
            rows.append(
                ThresholdRow(
                    threshold=threshold,
                    time_to_task_fault_ms=(fault_times[0] - inject_time) / 1000.0,
                    errors_at_fault=threshold,
                )
            )
        else:
            rows.append(ThresholdRow(threshold, None, 0))
    return rows


@dataclass
class EscalationRow:
    """One row of the restart-budget sweep."""

    max_app_restarts: int
    fault_kind: str
    restarts: int
    resets: int
    time_to_first_reset_ms: Optional[float]
    recovered: bool


def run_escalation_sweep(
    budgets: List[int] = (1, 2, 4),
    *,
    warmup: int = ms(300),
    observation: int = seconds(5),
    transient_duration: Optional[int] = None,
) -> List[EscalationRow]:
    """Restart-budget sweep under a permanent (or transient) fault."""
    rows: List[EscalationRow] = []
    fault_kind = (
        "permanent" if transient_duration is None
        else f"transient({transient_duration // 1000} ms)"
    )
    for budget in budgets:
        ecu = Ecu(
            "central",
            _mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                                 max_app_restarts=budget),
        )
        ecu.run_until(warmup)
        inject_time = ecu.now
        fault = BlockedRunnableFault("SAFE_CC_process")
        target = FaultTarget.from_ecu(ecu)
        fault.inject(target)
        if transient_duration is not None:
            ecu.kernel.queue.schedule(
                inject_time + transient_duration,
                lambda: fault.restore(target),
                label="restore",
                persistent=True,  # the fault's disappearance is physics
            )
        ecu.run_until(inject_time + observation)
        treatments = ecu.fmf.treatments_by_action()
        detections_now = ecu.watchdog.detection_count()
        ecu.run_until(ecu.now + seconds(1))
        recovered = ecu.watchdog.detection_count() == detections_now
        rows.append(
            EscalationRow(
                max_app_restarts=budget,
                fault_kind=fault_kind,
                restarts=treatments.get(TreatmentAction.RESTART_APPLICATION, 0),
                resets=len(ecu.reset_times),
                time_to_first_reset_ms=(
                    (ecu.reset_times[0] - inject_time) / 1000.0
                    if ecu.reset_times
                    else None
                ),
                recovered=recovered,
            )
        )
    return rows


def treatment_summary_rows() -> List[Dict[str, object]]:
    """Combined table for EXPERIMENTS.md."""
    rows: List[Dict[str, object]] = []
    for row in run_threshold_sweep():
        rows.append(
            {
                "experiment": "threshold sweep",
                "parameter": f"threshold={row.threshold}",
                "time_to_task_fault_ms": row.time_to_task_fault_ms,
                "resets": None,
                "recovered": None,
            }
        )
    for row in run_escalation_sweep():
        rows.append(
            {
                "experiment": "escalation (permanent fault)",
                "parameter": f"restart_budget={row.max_app_restarts}",
                "time_to_task_fault_ms": None,
                "resets": row.resets,
                "recovered": row.recovered,
            }
        )
    for row in run_escalation_sweep(budgets=[3], transient_duration=ms(400)):
        rows.append(
            {
                "experiment": "escalation (transient fault)",
                "parameter": f"restart_budget={row.max_app_restarts}",
                "time_to_task_fault_ms": None,
                "resets": row.resets,
                "recovered": row.recovered,
            }
        )
    return rows
