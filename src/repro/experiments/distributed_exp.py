"""E6 — distributed supervision across ECU borders (outlook extension).

A local Software Watchdog cannot report its own node's death.  This
study measures the supervision hierarchy's end: node-level aliveness
monitoring over the vehicle network.

Cases:

1. **node crash** — the supervised node locks up; the supervision-frame
   stream stops; the remote supervisor flags a node aliveness error
   within one supervision period and the network state degrades,
2. **node degradation** — the supervised node stays alive but its local
   watchdog reports faults; the remote supervisor mirrors the
   self-reported state without raising node-aliveness alarms
   (state propagation, not just liveness),
3. **recovery** — after reboot the stream resumes and the verdict
   returns to OK,
4. a **latency sweep** over the supervisor's check period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.reports import MonitorState
from ..faults.models import BlockedRunnableFault, FaultTarget
from ..kernel.clock import ms, seconds
from ..validator.multi_ecu import MultiEcuValidator


@dataclass
class DistributedReport:
    """Outcome of the three scenario phases."""

    crash_detect_latency_ms: Optional[float]
    healthy_peer_verdict: str
    degraded_state_mirrored: bool
    degraded_no_false_node_alarm: bool
    recovered_verdict: str
    frames_per_second: float
    sequence_gaps: int


def run_distributed_supervision(
    *,
    warmup: int = seconds(1),
    observe: int = ms(500),
) -> DistributedReport:
    """Run crash / degradation / recovery against the two-node rig."""
    rig = MultiEcuValidator(["chassis", "body"])
    rig.run_for(warmup)
    frames = rig.supervisor.peers["body"].frames_received
    fps = frames / (warmup / 1_000_000)

    # --- phase 1: degradation (alive but faulty) ----------------------
    degradation = BlockedRunnableFault("body.process")
    body_target = FaultTarget(
        kernel=rig.kernel,
        runnables=dict(rig.nodes["body"].ecu.system.runnables),
        charts=dict(rig.nodes["body"].ecu.system.charts),
        alarms=rig.nodes["body"].ecu.alarms,
    )
    degradation.inject(body_target)
    rig.run_for(observe)
    degraded_state = rig.node_state("body")
    degraded_mirrored = degraded_state in (
        MonitorState.SUSPICIOUS, MonitorState.FAULTY
    )
    no_false_node_alarm = (
        rig.supervisor.peers["body"].node_aliveness_errors == 0
    )

    # --- phase 2: crash ------------------------------------------------
    crash_time = rig.kernel.clock.now
    rig.crash_node("body")
    rig.run_for(observe)
    errors = [e for e in rig.node_aliveness_log if e.time >= crash_time]
    crash_latency = (errors[0].time - crash_time) / 1000.0 if errors else None
    healthy_verdict = rig.node_state("chassis").value

    # --- phase 3: recovery ----------------------------------------------
    # The reboot also clears the phase-1 software fault (fresh image).
    degradation.restore(body_target)
    rig.recover_node("body")
    rig.run_for(observe)
    return DistributedReport(
        crash_detect_latency_ms=crash_latency,
        healthy_peer_verdict=healthy_verdict,
        degraded_state_mirrored=degraded_mirrored,
        degraded_no_false_node_alarm=no_false_node_alarm,
        recovered_verdict=rig.node_state("body").value,
        frames_per_second=fps,
        sequence_gaps=rig.supervisor.peers["body"].sequence_gaps,
    )


def run_supervision_latency_sweep(
    check_periods: List[int] = (2, 3, 5, 10),
    *,
    warmup: int = ms(500),
    observe: int = seconds(1),
) -> List[Dict[str, object]]:
    """Crash-detection latency as a function of the supervisor's check
    period (in 10 ms supervision cycles)."""
    rows: List[Dict[str, object]] = []
    for period in check_periods:
        rig = MultiEcuValidator(["chassis", "body"],
                                supervisor_check_period=period)
        rig.run_for(warmup)
        crash_time = rig.kernel.clock.now
        rig.crash_node("body")
        rig.run_for(observe)
        errors = [e for e in rig.node_aliveness_log if e.time >= crash_time]
        rows.append(
            {
                "check_period_cycles": period,
                "check_window_ms": period * 10.0,
                "detect_latency_ms": (
                    (errors[0].time - crash_time) / 1000.0 if errors else None
                ),
                "detected": bool(errors),
            }
        )
    return rows
