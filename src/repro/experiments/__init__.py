"""Experiment harnesses: one module per table/figure of DESIGN.md.

These functions regenerate the paper's evaluation (Figures 5–6, plus the
implicit arrival-rate and control-flow cases) and the extension studies
named in the outlook (coverage E1, overhead E2, latency E3, treatment
E4, reconfiguration E5, tool chain F3).  The ``benchmarks/`` tree wraps
them with pytest-benchmark; EXPERIMENTS.md records their outputs.
"""

from .coverage import (
    build_coverage_system,
    run_coverage_campaign,
    standard_fault_factories,
    standard_fault_specs,
)
from .distributed_exp import (
    DistributedReport,
    run_distributed_supervision,
    run_supervision_latency_sweep,
)
from .figures import (
    FigureResult,
    run_figure5,
    run_figure5b,
    run_figure5c,
    run_figure6,
)
from .jitter import JitterRow, run_alarm_release, run_jitter_ablation, run_schedule_table_release
from .latency import run_latency_study
from .latency import build_latency_system
from .overhead import (
    campaign_scaling_rows,
    check_cycle_scaling_rows,
    flow_checking_rows,
    passive_vs_polling_rows,
    watchdog_cpu_rows,
)
from .reconfig import ReconfigReport, reconfig_rows, run_reconfiguration
from .toolchain import ToolchainReport, functional_model, map_onto_architecture, run_toolchain
from .treatment import (
    EscalationRow,
    ThresholdRow,
    run_escalation_sweep,
    run_threshold_sweep,
    treatment_summary_rows,
)

__all__ = [
    "DistributedReport",
    "EscalationRow",
    "FigureResult",
    "JitterRow",
    "ReconfigReport",
    "ThresholdRow",
    "ToolchainReport",
    "build_coverage_system",
    "build_latency_system",
    "campaign_scaling_rows",
    "check_cycle_scaling_rows",
    "flow_checking_rows",
    "functional_model",
    "map_onto_architecture",
    "passive_vs_polling_rows",
    "reconfig_rows",
    "run_alarm_release",
    "run_coverage_campaign",
    "run_distributed_supervision",
    "run_escalation_sweep",
    "run_figure5",
    "run_figure5b",
    "run_figure5c",
    "run_figure6",
    "run_jitter_ablation",
    "run_latency_study",
    "run_reconfiguration",
    "run_schedule_table_release",
    "run_supervision_latency_sweep",
    "run_threshold_sweep",
    "run_toolchain",
    "standard_fault_factories",
    "standard_fault_specs",
    "treatment_summary_rows",
    "watchdog_cpu_rows",
]
