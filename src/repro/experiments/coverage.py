"""E1 — fault-detection coverage analysis (the paper's outlook study).

Runs an injection campaign over every fault class in the catalogue
against four monitors side by side:

* the **Software Watchdog** (runnable granularity — the paper's service),
* the **ECU hardware watchdog** (whole-software granularity),
* **deadline monitoring** (task granularity, OSEKtime style),
* **execution-time monitoring** (task granularity, AUTOSAR OS style).

Expected shape: the Software Watchdog covers every class; the baselines
cover only the classes visible at their granularity (CPU starvation for
the HW watchdog, task overrun for deadline/budget monitors) and miss
runnable-level blocking, arrival-rate and flow faults.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..baselines.deadline_monitor import DeadlineMonitor
from ..baselines.exec_time_monitor import ExecutionTimeMonitor
from ..baselines.hw_watchdog import HardwareWatchdog, attach_kick_task
from ..faults.campaigns import (
    Campaign,
    CampaignResult,
    CampaignSystem,
    DetectionRecorder,
    FaultFactory,
    ProgressCallback,
    watchdog_detector,
)
from ..faults.registry import FaultSpec, register_fault, register_system
from ..faults.models import (
    BlockedRunnableFault,
    FaultModel,
    FaultTarget,
    HeartbeatCorruptionFault,
    InvalidBranchFault,
    LoopCountFault,
    SkipRunnableFault,
    TimeScalarFault,
)
from ..kernel.clock import ms, seconds
from ..kernel.task import Segment, Task
from ..platform.application import (
    Application,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)
from ..platform.ecu import Ecu
from ..platform.fmf import FmfPolicy


class _BaselineAdapter(DetectionRecorder):
    """Wraps a baseline monitor's ``first_detection_after``."""

    def __init__(self, name: str, monitor) -> None:
        super().__init__(name)
        self._monitor = monitor

    def first_detection_after(self, time: int) -> Optional[int]:
        return self._monitor.first_detection_after(time)


def _safespeed_mapping() -> TaskMapping:
    app = Application("SafeSpeed")
    swc = SoftwareComponent("SpeedControl")
    swc.add(RunnableSpec("GetSensorValue", wcet=ms(1)))
    swc.add(RunnableSpec("SAFE_CC_process", wcet=ms(2)))
    swc.add(RunnableSpec("Speed_process", wcet=ms(1)))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("SafeSpeedTask", priority=5, period=ms(10)))
    mapping.map_sequence(
        "SafeSpeedTask", ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
    )
    return mapping


@register_system("coverage")
def build_coverage_system() -> CampaignSystem:
    """One fresh system with all four monitors attached."""
    ecu = Ecu(
        "central",
        _safespeed_mapping(),
        watchdog_period=ms(10),
        fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                             max_app_restarts=10**6),
        fmf_auto_treatment=False,
    )
    sw = watchdog_detector(ecu.watchdog)

    hw = HardwareWatchdog(ecu.kernel, timeout=ms(100))
    kick = attach_kick_task(ecu.kernel, hw)
    ecu.alarms.alarm_activate_task("hwkick", kick.name).set_rel(ms(30), ms(30))
    hw.start()

    deadline = DeadlineMonitor(ecu.kernel)
    deadline.monitor("SafeSpeedTask", deadline=ms(9))

    budget = ExecutionTimeMonitor(ecu.kernel)
    budget.monitor("SafeSpeedTask", budget=ms(5))

    # A runaway task primed for the CPU-starvation fault class.
    def runaway_body(task):
        while True:
            yield Segment(ms(50))

    ecu.kernel.add_task(Task("Runaway", 9, runaway_body))

    return CampaignSystem(
        target=FaultTarget.from_ecu(ecu),
        detectors=[
            sw,
            _BaselineAdapter("HardwareWatchdog", hw),
            _BaselineAdapter("DeadlineMonitor", deadline),
            _BaselineAdapter("ExecTimeMonitor", budget),
        ],
        run_until=ecu.run_until,
        now=lambda: ecu.now,
        context={"ecu": ecu},
    )


class _RunawayFault(FaultModel):
    """CPU starvation: activate the primed runaway task (priority above
    every application, below the watchdog check task)."""

    expected_error = "aliveness"

    def __init__(self) -> None:
        super().__init__("runaway_task")

    def _apply(self, target) -> None:
        target.kernel.activate_task("Runaway")

    def _revert(self, target) -> None:
        target.kernel.force_terminate("Runaway")


register_fault("runaway", lambda system: _RunawayFault())


def standard_fault_specs(repetitions: int = 1) -> List[FaultSpec]:
    """The campaign's fault list: one picklable spec per (class, variant).

    Specs are callable with the ``FaultFactory`` signature, so the list
    works on the serial path unchanged — and is what lets
    ``workers=N`` ship the very same campaign to worker processes.
    """
    base = [
        FaultSpec.of("blocked", runnable="SAFE_CC_process"),
        FaultSpec.of("blocked", runnable="GetSensorValue"),
        FaultSpec.of("time_scalar", task="SafeSpeedTask", scalar=4.0),
        FaultSpec.of("loop_count", runnable="GetSensorValue", repeat=4),
        FaultSpec.of("skip", chart="SafeSpeedTask", skipped="SAFE_CC_process"),
        FaultSpec.of("invalid_branch", chart="SafeSpeedTask", at_step=1,
                     branch_to="Speed_process"),
        FaultSpec.of("hb_corrupt", runnable="SAFE_CC_process",
                     reported_as="Speed_process"),
        FaultSpec.of("runaway"),
    ]
    return base * repetitions


def standard_fault_factories(repetitions: int = 1) -> List[FaultFactory]:
    """Backwards-compatible alias for :func:`standard_fault_specs`."""
    return list(standard_fault_specs(repetitions))


def run_coverage_campaign(
    *,
    warmup: int = ms(300),
    observation: int = seconds(2),
    repetitions: int = 1,
    system_factory: Optional[Callable[[], CampaignSystem]] = None,
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
    telemetry=None,
) -> CampaignResult:
    """Execute the E1 campaign and return the aggregated result.

    ``workers=N`` fans the injections out over N processes (``0`` =
    ``os.cpu_count()``); results are bit-for-bit identical to the
    serial run.  A custom ``system_factory`` callable forces the serial
    path — pass a registered :class:`SystemSpec` name instead to keep
    parallel execution available.
    """
    campaign = Campaign(
        system_factory if system_factory is not None else "coverage",
        warmup=warmup,
        observation=observation,
        telemetry=telemetry,
    )
    return campaign.execute(
        standard_fault_specs(repetitions), workers=workers, progress=progress
    )
