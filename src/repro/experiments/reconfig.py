"""E5 — dynamic reconfiguration / fault containment study (outlook).

Two applications share the ECU (SafeSpeed and SafeLane).  SafeLane's
detection runnable suffers a permanent fault; the FMF exhausts its
restart budget and — because SafeLane tolerates termination while the
ECU must keep limiting speed — the policy terminates SafeLane rather
than resetting the ECU.

Expected shape (fault containment): SafeSpeed keeps regulating the
vehicle speed throughout; after SafeLane's termination its runnables are
no longer monitored (no alarm flood from a dead application) and the
global ECU state recovers to OK from the watchdog's perspective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..faults.models import BlockedRunnableFault, FaultTarget
from ..kernel.clock import seconds
from ..platform.fmf import FmfPolicy
from ..validator.hil import HilValidator


@dataclass
class ReconfigReport:
    """Outcome of the reconfiguration scenario."""

    safelane_terminated: bool
    safelane_restarts: int
    ecu_resets: int
    speed_kph_at_end: float
    speed_regulated: bool
    detections_after_termination: int
    safespeed_state: str
    safelane_state: str


def run_reconfiguration(
    *,
    warmup: int = seconds(2),
    observation: int = seconds(6),
    settle: int = seconds(4),
    restart_budget: int = 2,
) -> ReconfigReport:
    """Run the containment scenario on the full HIL rig."""
    rig = HilValidator(
        fmf_policy=FmfPolicy(
            # A single faulty task must not be treated as a global ECU
            # failure while another safety function is running fine.
            ecu_faulty_task_threshold=2,
            max_app_restarts=restart_budget,
        ),
    )
    # SafeLane tolerates termination; an ECU reset would blank SafeSpeed.
    safelane_app = next(
        app for app in rig.ecu.mapping.applications if app.name == "SafeLane"
    )
    safelane_app.restartable = True
    safelane_app.ecu_reset_allowed = False

    rig.run(warmup)
    BlockedRunnableFault("LDW_process").inject(FaultTarget.from_ecu(rig.ecu))
    rig.run(observation)

    detections_at_term = rig.ecu.watchdog.detection_count()
    rig.run(settle)

    limit = rig.central_store.value("SpeedCommand", "limit_kph", 130.0)
    speed = rig.vehicle.state.speed_kph
    return ReconfigReport(
        safelane_terminated="SafeLane" in rig.ecu.terminated_applications,
        safelane_restarts=rig.ecu.application_restart_counts.get("SafeLane", 0),
        ecu_resets=len(rig.ecu.reset_times),
        speed_kph_at_end=speed,
        speed_regulated=speed <= limit + 2.0 and speed > limit * 0.5,
        detections_after_termination=(
            rig.ecu.watchdog.detection_count() - detections_at_term
        ),
        safespeed_state=rig.ecu.application_state("SafeSpeed").value,
        safelane_state=rig.ecu.application_state("SafeLane").value,
    )


def reconfig_rows() -> Dict[str, object]:
    """Flat dict for EXPERIMENTS.md."""
    report = run_reconfiguration()
    return {
        "safelane_terminated": report.safelane_terminated,
        "safelane_restarts": report.safelane_restarts,
        "ecu_resets": report.ecu_resets,
        "speed_regulated": report.speed_regulated,
        "detections_after_termination": report.detections_after_termination,
        "safespeed_state": report.safespeed_state,
        "safelane_state": report.safelane_state,
    }
