"""Command-line interface: regenerate any experiment from the shell.

Usage::

    python -m repro figures            # Figures 5, 5b, 5c, 6
    python -m repro figures --which 6
    python -m repro coverage           # E1 coverage matrix
    python -m repro coverage --workers 4   # ... across 4 processes
    python -m repro overhead           # E2 tables (+ S12XF projection)
    python -m repro latency            # E3 latency table
    python -m repro treatment          # E4 sweeps
    python -m repro reconfig           # E5 containment scenario
    python -m repro distributed        # E6 multi-ECU supervision
    python -m repro jitter             # E7 release-offset ablation
    python -m repro toolchain          # F3 pipeline + RTA cross-check
    python -m repro rig --seconds 10   # drive the HIL validator
    python -m repro serve --port 6060  # run the live supervision daemon
    python -m repro lint               # wdlint the shipped app hypotheses
    python -m repro lint my.json --format json   # ... or your own files
    python -m repro metrics rig        # telemetry snapshot of a healthy rig
    python -m repro metrics faulty --format json
    python -m repro all                # everything above

The ``lint`` subcommand exits 0 when every hypothesis is free of
error-severity diagnostics (warnings allowed unless ``--strict``), 1 on
lint errors and 2 when a target cannot be loaded — wire it into CI
(``make lint`` does).

The ``metrics`` subcommand runs one instrumented scenario and renders
the registry: ``--format prometheus`` (default) prints the text
exposition format, ``--format json`` a stable JSON snapshot.  It exits
0 on success and 2 on usage errors (argparse) — matching ``lint``'s
convention that 0 means "ran and rendered".  ``--telemetry out.jsonl``
additionally streams the scenario's structured events to a JSONL file;
the same flag on ``coverage``, ``latency``, ``overhead`` and ``all``
captures result rows and a final metrics snapshot of those runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List


def _print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def cmd_figures(args: argparse.Namespace) -> None:
    from .experiments import run_figure5, run_figure5b, run_figure5c, run_figure6

    runners = {
        "5": run_figure5,
        "5b": run_figure5b,
        "5c": run_figure5c,
        "6": run_figure6,
    }
    which = runners if args.which == "all" else {args.which: runners[args.which]}
    for key, runner in which.items():
        result = runner()
        _print_header(f"Figure {key}: {result.description}")
        print(result.rendered)
        print("measured:", dict(result.measurements))


def _progress(done: int, total: int) -> None:
    print(f"  ... {done}/{total} runs", file=sys.stderr)


def _open_telemetry(args: argparse.Namespace):
    """Per-command telemetry setup for the ``--telemetry PATH`` flag.

    Returns ``(registry, sink, owned)``; ``owned`` is False when the
    pair is shared (``repro all`` opens one appending sink for every
    subcommand), in which case the caller must not close it.
    """
    shared = getattr(args, "_telemetry", None)
    if shared is not None:
        return shared[0], shared[1], False
    path = getattr(args, "telemetry", None)
    if not path:
        return None, None, False
    from .telemetry import JsonlFileSink, MetricsRegistry

    return MetricsRegistry(), JsonlFileSink(path), True


def _emit_rows(sink, registry, subject: str, rows, snapshot: bool = True) -> None:
    """Append one ``result_row`` event per row plus (by default) a
    ``metrics_snapshot`` of the registry."""
    from .telemetry import (
        KIND_METRICS_SNAPSHOT,
        KIND_RESULT_ROW,
        TelemetryEvent,
    )

    for row in rows:
        sink.emit(TelemetryEvent(
            time=0, kind=KIND_RESULT_ROW, subject=subject, data=dict(row)
        ))
    if snapshot:
        sink.emit(TelemetryEvent(
            time=0, kind=KIND_METRICS_SNAPSHOT, subject=subject,
            data=registry.snapshot(),
        ))


def cmd_coverage(args: argparse.Namespace) -> None:
    from .analysis import coverage_report
    from .experiments import run_coverage_campaign
    from .kernel import seconds

    registry, sink, owned = _open_telemetry(args)
    _print_header("E1 — fault detection coverage")
    result = run_coverage_campaign(
        observation=seconds(args.observation),
        repetitions=args.repetitions,
        workers=args.workers,
        progress=_progress if args.workers != 1 else None,
        telemetry=registry,
    )
    print(coverage_report(result))
    if sink is not None:
        _emit_rows(sink, registry, "coverage", result.coverage_table())
        if owned:
            sink.close()


def cmd_overhead(args: argparse.Namespace) -> None:
    from .analysis import format_table, projection_rows
    from .experiments import (
        campaign_scaling_rows,
        check_cycle_scaling_rows,
        flow_checking_rows,
        passive_vs_polling_rows,
        watchdog_cpu_rows,
    )

    registry, sink, owned = _open_telemetry(args)
    tables = [
        ("E2 — flow checking: look-up table vs CFCSS", flow_checking_rows),
        ("E2 — watchdog CPU share", watchdog_cpu_rows),
        ("E2 — passive heartbeats vs active polling", passive_vs_polling_rows),
        ("E2 — check-cycle scaling: full scan vs expiry wheel",
         check_cycle_scaling_rows),
        ("E2 — campaign scaling: serial vs worker processes",
         campaign_scaling_rows),
        ("E2b — projection onto target MCUs (outlook: S12XF)",
         projection_rows),
    ]
    for title, rows_fn in tables:
        rows = rows_fn()
        _print_header(title)
        print(format_table(rows))
        if sink is not None:
            _emit_rows(sink, registry, title, rows, snapshot=False)
    if sink is not None:
        _emit_rows(sink, registry, "overhead", [])
        if owned:
            sink.close()


def cmd_latency(args: argparse.Namespace) -> None:
    from .analysis import format_table
    from .experiments import run_latency_study

    registry, sink, owned = _open_telemetry(args)
    _print_header("E3 — detection latency (period-end vs eager-arrival)")
    rows = run_latency_study(
        repetitions=args.repetitions, workers=args.workers,
        telemetry=registry,
    )
    print(format_table(rows))
    if sink is not None:
        _emit_rows(sink, registry, "latency", rows)
        if owned:
            sink.close()


def cmd_treatment(args: argparse.Namespace) -> None:
    from .analysis import format_table
    from .experiments import run_escalation_sweep, run_threshold_sweep
    from .kernel import ms

    _print_header("E4 — TSI threshold sweep")
    print(format_table([r.__dict__ for r in run_threshold_sweep()]))
    _print_header("E4 — escalation sweep (permanent fault)")
    print(format_table([r.__dict__ for r in run_escalation_sweep()]))
    _print_header("E4 — escalation (transient 400 ms fault)")
    print(format_table([
        r.__dict__
        for r in run_escalation_sweep(budgets=[3], transient_duration=ms(400))
    ]))


def cmd_reconfig(args: argparse.Namespace) -> None:
    from .experiments import run_reconfiguration

    _print_header("E5 — dynamic reconfiguration / containment")
    report = run_reconfiguration()
    for key, value in report.__dict__.items():
        print(f"  {key}: {value}")


def cmd_distributed(args: argparse.Namespace) -> None:
    from .analysis import format_table
    from .experiments import (
        run_distributed_supervision,
        run_supervision_latency_sweep,
    )

    _print_header("E6 — distributed supervision (crash/degrade/recover)")
    report = run_distributed_supervision()
    for key, value in report.__dict__.items():
        print(f"  {key}: {value}")
    _print_header("E6 — crash-detection latency vs check window")
    print(format_table(run_supervision_latency_sweep()))


def cmd_jitter(args: argparse.Namespace) -> None:
    from .analysis import format_table
    from .experiments import run_jitter_ablation

    _print_header("E7 — release offsets: alarms vs schedule table")
    print(format_table(run_jitter_ablation()))


def cmd_toolchain(args: argparse.Namespace) -> None:
    from .analysis import format_table
    from .experiments import run_toolchain

    _print_header("F3 — model-based tool chain + RTA cross-check")
    report = run_toolchain()
    rows = [
        {
            "task": task,
            "rta_bound_us": report.rta_bounds[task],
            "observed_worst_us": report.observed_worst.get(task),
        }
        for task in report.rta_bounds
    ]
    print(format_table(rows))
    print(f"utilization={report.utilization:.3f} "
          f"schedulable={report.schedulable} bounds_hold={report.bounds_hold} "
          f"lint_ok={report.lint_ok}")
    for line in report.lint_diagnostics:
        print(f"  lint: {line}")


def cmd_lint(args: argparse.Namespace) -> int:
    from .lint import run_lint

    return run_lint(args.targets, fmt=args.format, strict=args.strict)


def cmd_rig(args: argparse.Namespace) -> None:
    from .kernel import seconds
    from .validator import HilValidator

    _print_header(f"HIL validator — {args.seconds} simulated seconds")
    rig = HilValidator()
    rig.run(seconds(args.seconds))
    for key, value in rig.summary().items():
        print(f"  {key}: {value}")


def cmd_serve(args: argparse.Namespace) -> int:
    from .service.cli import run_serve

    return run_serve(args)


def cmd_metrics(args: argparse.Namespace) -> None:
    from .kernel import seconds
    from .telemetry import (
        JsonlFileSink,
        MetricsRegistry,
        NULL_SINK,
    )

    registry = MetricsRegistry()
    sink = JsonlFileSink(args.telemetry) if args.telemetry else NULL_SINK

    if args.scenario in ("rig", "faulty"):
        from .validator import HilValidator

        rig = HilValidator(telemetry=registry, event_sink=sink)
        if args.scenario == "faulty":
            from .faults import ErrorInjector, FaultTarget, TimeScalarFault

            # Mirror Figure 5: scale the SafeSpeed release period for a
            # window so aliveness errors (and treatments) show up.
            horizon = seconds(args.seconds)
            injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))
            fault = TimeScalarFault("SafeSpeedTask", scalar=4.0)
            rig.start()
            injector.inject_at(horizon // 4, fault,
                               restore_at=3 * horizon // 4)
            rig.run(horizon)
        else:
            rig.run(seconds(args.seconds))
        rig.ecu.watchdog.sync_telemetry()
    else:  # coverage
        from .experiments import run_coverage_campaign

        run_coverage_campaign(telemetry=registry)

    if args.format == "prometheus":
        print(registry.render_prometheus(), end="")
    else:
        print(registry.render_json())
    if sink is not NULL_SINK:
        sink.close()


def cmd_all(args: argparse.Namespace) -> None:
    workers = getattr(args, "workers", 1)
    telemetry_path = getattr(args, "telemetry", None)
    shared = None
    if telemetry_path:
        from .telemetry import JsonlFileSink, MetricsRegistry

        shared = (MetricsRegistry(), JsonlFileSink(telemetry_path))
    try:
        for command in (cmd_figures, cmd_coverage, cmd_overhead, cmd_latency,
                        cmd_treatment, cmd_reconfig, cmd_distributed,
                        cmd_jitter, cmd_toolchain):
            defaults = argparse.Namespace(
                which="all", observation=2.0, repetitions=1, seconds=5.0,
                workers=workers, telemetry=None, _telemetry=shared,
            )
            command(defaults)
    finally:
        if shared is not None:
            shared[1].close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Software Watchdog (DSN 2007) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="Figures 5/5b/5c/6")
    figures.add_argument("--which", choices=["5", "5b", "5c", "6", "all"],
                         default="all")
    figures.set_defaults(func=cmd_figures)

    workers_help = ("worker processes for campaign runs "
                    "(1 = serial, 0 = os.cpu_count())")
    telemetry_help = "stream structured telemetry events to this JSONL file"

    coverage = sub.add_parser("coverage", help="E1 coverage matrix")
    coverage.add_argument("--observation", type=float, default=2.0,
                          help="observation window per injection (s)")
    coverage.add_argument("--repetitions", type=int, default=1)
    coverage.add_argument("--workers", type=int, default=1, help=workers_help)
    coverage.add_argument("--telemetry", metavar="PATH", default=None,
                          help=telemetry_help)
    coverage.set_defaults(func=cmd_coverage)

    overhead = sub.add_parser("overhead", help="E2 overhead tables")
    overhead.add_argument("--telemetry", metavar="PATH", default=None,
                          help=telemetry_help)
    overhead.set_defaults(func=cmd_overhead)

    latency = sub.add_parser("latency", help="E3 latency table")
    latency.add_argument("--repetitions", type=int, default=3)
    latency.add_argument("--workers", type=int, default=1, help=workers_help)
    latency.add_argument("--telemetry", metavar="PATH", default=None,
                         help=telemetry_help)
    latency.set_defaults(func=cmd_latency)

    sub.add_parser("treatment", help="E4 treatment sweeps").set_defaults(
        func=cmd_treatment)
    sub.add_parser("reconfig", help="E5 containment scenario").set_defaults(
        func=cmd_reconfig)
    sub.add_parser("distributed", help="E6 multi-ECU supervision").set_defaults(
        func=cmd_distributed)
    sub.add_parser("jitter", help="E7 release-offset ablation").set_defaults(
        func=cmd_jitter)
    sub.add_parser("toolchain", help="F3 pipeline").set_defaults(
        func=cmd_toolchain)

    rig = sub.add_parser("rig", help="drive the HIL validator")
    rig.add_argument("--seconds", type=float, default=5.0)
    rig.set_defaults(func=cmd_rig)

    lint = sub.add_parser(
        "lint", help="wdlint: statically analyze fault hypotheses")
    lint.add_argument(
        "targets", nargs="*",
        help="hypothesis JSON files and/or builtin app names "
             "(safespeed, safelane, steer-by-wire); default: all builtins")
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as errors (exit 1)")
    lint.set_defaults(func=cmd_lint)

    metrics = sub.add_parser(
        "metrics", help="run one instrumented scenario, render the registry")
    metrics.add_argument(
        "scenario", nargs="?", choices=["rig", "faulty", "coverage"],
        default="rig",
        help="rig: healthy HIL run; faulty: HIL run with an injected "
             "aliveness fault; coverage: small E1 campaign")
    metrics.add_argument("--format", choices=["prometheus", "json"],
                         default="prometheus")
    metrics.add_argument("--seconds", type=float, default=2.0,
                         help="simulated seconds for the rig scenarios")
    metrics.add_argument("--telemetry", metavar="PATH", default=None,
                         help=telemetry_help)
    metrics.set_defaults(func=cmd_metrics)

    serve = sub.add_parser(
        "serve", help="run the live supervision daemon (asyncio)")
    from .service.cli import add_serve_arguments

    add_serve_arguments(serve)
    serve.set_defaults(func=cmd_serve)

    all_cmd = sub.add_parser("all", help="run every experiment")
    all_cmd.add_argument("--workers", type=int, default=1, help=workers_help)
    all_cmd.add_argument("--telemetry", metavar="PATH", default=None,
                         help=telemetry_help)
    all_cmd.set_defaults(func=cmd_all)
    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    result = args.func(args)
    # Most commands print and return None; ``lint`` returns a CI-grade
    # exit code.
    return int(result or 0)


if __name__ == "__main__":
    sys.exit(main())
