"""Fault-injection campaigns: coverage and latency accounting.

The paper's outlook names "further analysis of fault detection coverage"
as the next step; this module is that analysis.  A campaign runs many
independent experiments — fresh system, warm-up, inject one fault,
observe — and tabulates per fault class and per detector:

* **coverage** — fraction of injections the detector flagged,
* **detection latency** — time from injection to first detection.

Detectors are anything exposing ``name`` and
``first_detection_after(t)``; the Software Watchdog and every baseline
monitor provide adapters via :class:`DetectionRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .injector import ErrorInjector
from .models import FaultModel, FaultTarget


class DetectionRecorder:
    """Collects detection timestamps for one monitor."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[int] = []

    def record(self, time: int) -> None:
        """Note one detection event."""
        self.times.append(time)

    def first_detection_after(self, time: int) -> Optional[int]:
        """Earliest detection at or after ``time`` (None = undetected)."""
        for t in self.times:
            if t >= time:
                return t
        return None

    def clear(self) -> None:
        self.times.clear()


def watchdog_detector(
    watchdog, name: str = "SoftwareWatchdog", error_type=None
) -> DetectionRecorder:
    """Adapter recording runnable errors the watchdog detects.

    Pass an :class:`~repro.core.reports.ErrorType` to record only one
    detection channel (used by the latency study to attribute latency to
    the aliveness / arrival-rate / flow monitors individually).
    """
    recorder = DetectionRecorder(name)

    def on_error(error):
        if error_type is None or error.error_type is error_type:
            recorder.record(error.time)

    watchdog.add_fault_listener(on_error)
    return recorder


@dataclass
class CampaignSystem:
    """One freshly built system under test."""

    target: FaultTarget
    detectors: List[DetectionRecorder]
    run_until: Callable[[int], None]
    now: Callable[[], int]
    #: Arbitrary extras a system factory wants to expose to fault factories.
    context: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of one injection experiment."""

    fault_name: str
    fault_class: str
    expected_error: str
    inject_time: int
    #: detector name → detection time (None = missed).
    detections: Dict[str, Optional[int]] = field(default_factory=dict)

    def latency(self, detector: str) -> Optional[int]:
        t = self.detections.get(detector)
        return None if t is None else t - self.inject_time

    def detected_by(self, detector: str) -> bool:
        return self.detections.get(detector) is not None


@dataclass
class CampaignResult:
    """All runs of one campaign plus aggregation helpers."""

    runs: List[RunResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    def fault_classes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.fault_class, None)
        return list(seen)

    def detectors(self) -> List[str]:
        seen: Dict[str, None] = {}
        for run in self.runs:
            for name in run.detections:
                seen.setdefault(name, None)
        return list(seen)

    def coverage(self, detector: str, fault_class: Optional[str] = None) -> float:
        """Fraction of injections detected (1.0 = all)."""
        relevant = [
            r for r in self.runs if fault_class is None or r.fault_class == fault_class
        ]
        if not relevant:
            return 0.0
        hits = sum(1 for r in relevant if r.detected_by(detector))
        return hits / len(relevant)

    def latencies(self, detector: str, fault_class: Optional[str] = None) -> List[int]:
        """All observed latencies (ticks) for detected injections."""
        out = []
        for run in self.runs:
            if fault_class is not None and run.fault_class != fault_class:
                continue
            latency = run.latency(detector)
            if latency is not None:
                out.append(latency)
        return out

    def mean_latency(self, detector: str, fault_class: Optional[str] = None) -> Optional[float]:
        values = self.latencies(detector, fault_class)
        return sum(values) / len(values) if values else None

    def coverage_table(self) -> List[Dict[str, object]]:
        """One row per (fault class, detector): coverage + mean latency."""
        rows: List[Dict[str, object]] = []
        for fault_class in self.fault_classes():
            for detector in self.detectors():
                rows.append(
                    {
                        "fault_class": fault_class,
                        "detector": detector,
                        "coverage": self.coverage(detector, fault_class),
                        "mean_latency": self.mean_latency(detector, fault_class),
                        "runs": sum(
                            1 for r in self.runs if r.fault_class == fault_class
                        ),
                    }
                )
        return rows


FaultFactory = Callable[[CampaignSystem], FaultModel]
SystemFactory = Callable[[], CampaignSystem]


class Campaign:
    """Runs one injection experiment per fault factory."""

    def __init__(
        self,
        system_factory: SystemFactory,
        *,
        warmup: int,
        observation: int,
        transient_duration: Optional[int] = None,
    ) -> None:
        if warmup < 0 or observation <= 0:
            raise ValueError("warmup must be >= 0 and observation > 0")
        self.system_factory = system_factory
        self.warmup = warmup
        self.observation = observation
        self.transient_duration = transient_duration

    def execute(self, fault_factories: Sequence[FaultFactory]) -> CampaignResult:
        """Run every fault in its own fresh system."""
        result = CampaignResult()
        for factory in fault_factories:
            result.runs.append(self._run_one(factory))
        return result

    # ------------------------------------------------------------------
    def _run_one(self, factory: FaultFactory) -> RunResult:
        system = self.system_factory()
        system.run_until(self.warmup)
        fault = factory(system)
        injector = ErrorInjector(system.target)
        inject_time = system.now()
        injector.inject_now(fault)
        if self.transient_duration is not None:
            system.target.kernel.queue.schedule(
                inject_time + self.transient_duration,
                lambda: fault.restore(system.target),
                label=f"restore:{fault.name}",
                persistent=True,
            )
        system.run_until(inject_time + self.observation)
        detections = {
            det.name: det.first_detection_after(inject_time)
            for det in system.detectors
        }
        return RunResult(
            fault_name=fault.name,
            fault_class=type(fault).__name__,
            expected_error=fault.expected_error,
            inject_time=inject_time,
            detections=detections,
        )
