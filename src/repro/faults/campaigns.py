"""Fault-injection campaigns: coverage and latency accounting.

The paper's outlook names "further analysis of fault detection coverage"
as the next step; this module is that analysis.  A campaign runs many
independent experiments — fresh system, warm-up, inject one fault,
observe — and tabulates per fault class and per detector:

* **coverage** — fraction of injections the detector flagged,
* **detection latency** — time from injection to first detection.

Detectors are anything exposing ``name`` and
``first_detection_after(t)``; the Software Watchdog and every baseline
monitor provide adapters via :class:`DetectionRecorder`.
"""

from __future__ import annotations

import os
from bisect import bisect_left, insort
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..telemetry import DEFAULT_DURATION_BUCKETS, NULL_REGISTRY
from .injector import ErrorInjector
from .models import FaultModel, FaultTarget
from .registry import FaultSpec, RunSpec, SystemSpec, execute_chunk, execute_chunk_timed


class DetectionRecorder:
    """Collects detection timestamps for one monitor.

    ``times`` is kept sorted: detections normally arrive in
    monotonically increasing simulation time, in which case ``record``
    is an O(1) append; an out-of-order timestamp (a detector replaying
    a buffered event) is insorted instead of rejected.  Queries are
    then a single ``bisect`` rather than a linear scan — campaigns call
    ``first_detection_after`` once per (run × detector), and long
    observation windows accumulate thousands of detections.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[int] = []

    def record(self, time: int) -> None:
        """Note one detection event (keeps ``times`` sorted)."""
        if self.times and time < self.times[-1]:
            insort(self.times, time)
        else:
            self.times.append(time)

    def first_detection_after(self, time: int) -> Optional[int]:
        """Earliest detection at or after ``time`` (None = undetected)."""
        index = bisect_left(self.times, time)
        return self.times[index] if index < len(self.times) else None

    def clear(self) -> None:
        self.times.clear()


def watchdog_detector(
    watchdog, name: str = "SoftwareWatchdog", error_type=None
) -> DetectionRecorder:
    """Adapter recording runnable errors the watchdog detects.

    Pass an :class:`~repro.core.reports.ErrorType` to record only one
    detection channel (used by the latency study to attribute latency to
    the aliveness / arrival-rate / flow monitors individually).
    """
    recorder = DetectionRecorder(name)

    def on_error(error):
        if error_type is None or error.error_type is error_type:
            recorder.record(error.time)

    watchdog.add_fault_listener(on_error)
    return recorder


@dataclass
class CampaignSystem:
    """One freshly built system under test."""

    target: FaultTarget
    detectors: List[DetectionRecorder]
    run_until: Callable[[int], None]
    now: Callable[[], int]
    #: Arbitrary extras a system factory wants to expose to fault factories.
    context: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of one injection experiment."""

    fault_name: str
    fault_class: str
    expected_error: str
    inject_time: int
    #: detector name → detection time (None = missed).
    detections: Dict[str, Optional[int]] = field(default_factory=dict)

    def latency(self, detector: str) -> Optional[int]:
        t = self.detections.get(detector)
        return None if t is None else t - self.inject_time

    def detected_by(self, detector: str) -> bool:
        return self.detections.get(detector) is not None


@dataclass
class CampaignResult:
    """All runs of one campaign plus aggregation helpers."""

    runs: List[RunResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    def fault_classes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.fault_class, None)
        return list(seen)

    def detectors(self) -> List[str]:
        seen: Dict[str, None] = {}
        for run in self.runs:
            for name in run.detections:
                seen.setdefault(name, None)
        return list(seen)

    def coverage(self, detector: str, fault_class: Optional[str] = None) -> float:
        """Fraction of injections detected (1.0 = all)."""
        relevant = [
            r for r in self.runs if fault_class is None or r.fault_class == fault_class
        ]
        if not relevant:
            return 0.0
        hits = sum(1 for r in relevant if r.detected_by(detector))
        return hits / len(relevant)

    def latencies(self, detector: str, fault_class: Optional[str] = None) -> List[int]:
        """All observed latencies (ticks) for detected injections."""
        out = []
        for run in self.runs:
            if fault_class is not None and run.fault_class != fault_class:
                continue
            latency = run.latency(detector)
            if latency is not None:
                out.append(latency)
        return out

    def mean_latency(self, detector: str, fault_class: Optional[str] = None) -> Optional[float]:
        values = self.latencies(detector, fault_class)
        return sum(values) / len(values) if values else None

    def coverage_table(self) -> List[Dict[str, object]]:
        """One row per (fault class, detector): coverage + mean latency.

        Single pass over the runs into per-(class, detector) buckets;
        the naive formulation (``coverage`` + ``mean_latency`` + a run
        count per row) rescans the full run list classes × detectors ×
        3 times, which dominates aggregation cost on large campaigns.
        """
        class_order: List[str] = []
        detector_order: List[str] = []
        runs_per_class: Dict[str, int] = {}
        # (class, detector) -> [hits, latency_sum, latency_count]
        buckets: Dict[Tuple[str, str], List[int]] = {}
        for run in self.runs:
            fault_class = run.fault_class
            if fault_class not in runs_per_class:
                runs_per_class[fault_class] = 0
                class_order.append(fault_class)
            runs_per_class[fault_class] += 1
            for detector, detected_at in run.detections.items():
                if detector not in detector_order:
                    detector_order.append(detector)
                bucket = buckets.setdefault((fault_class, detector), [0, 0, 0])
                if detected_at is not None:
                    bucket[0] += 1
                    bucket[1] += detected_at - run.inject_time
                    bucket[2] += 1
        rows: List[Dict[str, object]] = []
        for fault_class in class_order:
            for detector in detector_order:
                hits, latency_sum, latency_count = buckets.get(
                    (fault_class, detector), (0, 0, 0)
                )
                rows.append(
                    {
                        "fault_class": fault_class,
                        "detector": detector,
                        "coverage": hits / runs_per_class[fault_class],
                        "mean_latency": (
                            latency_sum / latency_count if latency_count else None
                        ),
                        "runs": runs_per_class[fault_class],
                    }
                )
        return rows


FaultFactory = Callable[[CampaignSystem], FaultModel]
SystemFactory = Callable[[], CampaignSystem]

#: ``progress(done_runs, total_runs)`` — called after every completed
#: run (serial) or every completed chunk (parallel).
ProgressCallback = Callable[[int, int], None]


class Campaign:
    """Runs one injection experiment per fault factory.

    ``system_factory`` may be a plain callable (the historical API), a
    :class:`~repro.faults.registry.SystemSpec`, or a registered system
    name (shorthand for a parameterless spec).  Spec-based campaigns can
    additionally fan out across worker processes — see :meth:`execute`.
    """

    def __init__(
        self,
        system_factory: Union[SystemFactory, SystemSpec, str],
        *,
        warmup: int,
        observation: int,
        transient_duration: Optional[int] = None,
        telemetry=None,
    ) -> None:
        if warmup < 0 or observation <= 0:
            raise ValueError("warmup must be >= 0 and observation > 0")
        if isinstance(system_factory, str):
            system_factory = SystemSpec.of(system_factory)
        self.system_spec = (
            system_factory if isinstance(system_factory, SystemSpec) else None
        )
        self.system_factory = system_factory
        self.warmup = warmup
        self.observation = observation
        self.transient_duration = transient_duration
        # Campaign instruments.  With the null registry (the default) the
        # timed dispatch path is never taken, so untelemetered campaigns
        # run the historical code byte-for-byte.
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self._tm_enabled = self.telemetry.enabled
        tm = self.telemetry
        self._tm_runs = tm.counter(
            "campaign_runs_total", "Injection experiments completed")
        self._tm_run_seconds = tm.histogram(
            "campaign_run_seconds",
            "Wall-clock duration of one injection experiment",
            buckets=DEFAULT_DURATION_BUCKETS,
        )
        self._tm_utilization = tm.gauge(
            "campaign_worker_utilization",
            "Busy fraction of the worker pool over the last parallel execute "
            "(sum of per-run wall time / (elapsed time x workers))",
        )

    def execute(
        self,
        fault_factories: Sequence[FaultFactory],
        *,
        workers: int = 1,
        progress: Optional[ProgressCallback] = None,
        chunksize: Optional[int] = None,
        seed: int = 0,
    ) -> CampaignResult:
        """Run every fault in its own fresh system.

        ``workers=1`` (default) runs serially in this process;
        ``workers=N`` fans the runs out over a ``ProcessPoolExecutor``;
        ``workers=0`` means ``os.cpu_count()``.  Parallel execution
        requires picklable run descriptions: the campaign must have been
        built from a :class:`SystemSpec` (or registered name) and every
        entry of ``fault_factories`` must be a :class:`FaultSpec`.

        The merged result is **order-stable and bit-for-bit identical**
        to the serial run: runs appear in ``fault_factories`` order
        regardless of which worker finished first, and serial and
        parallel paths share one run implementation
        (:func:`~repro.faults.registry.execute_run`).

        ``chunksize`` batches runs per worker dispatch (default: spread
        over ~4 chunks per worker) so interpreter and pickling overhead
        amortizes across many short simulations.  ``seed`` offsets the
        per-run seeds recorded in the specs.
        """
        factories = list(fault_factories)
        if workers == 0:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError("workers must be >= 0")
        specs = self._run_specs(factories, seed, require=workers > 1)
        total = len(factories)
        result = CampaignResult()
        if workers == 1 or total == 0:
            if specs is not None:
                # Same code path a worker runs — the equivalence anchor.
                for index, spec in enumerate(specs):
                    if self._tm_enabled:
                        runs, durations = execute_chunk_timed([spec])
                        result.runs.extend(runs)
                        self._tm_record_runs(durations)
                    else:
                        result.runs.extend(execute_chunk([spec]))
                    if progress is not None:
                        progress(index + 1, total)
            else:
                for index, factory in enumerate(factories):
                    begin = perf_counter() if self._tm_enabled else 0.0
                    result.runs.append(self._run_one(factory))
                    if self._tm_enabled:
                        self._tm_record_runs([perf_counter() - begin])
                    if progress is not None:
                        progress(index + 1, total)
            return result
        result.runs.extend(
            self._execute_parallel(specs, workers, progress, chunksize)
        )
        return result

    # ------------------------------------------------------------------
    def _run_specs(
        self, factories: Sequence[FaultFactory], seed: int, *, require: bool
    ) -> Optional[List[RunSpec]]:
        """Describe the runs as picklable specs, or ``None`` when the
        campaign uses closures (legacy serial-only mode)."""
        speccable = self.system_spec is not None and all(
            isinstance(f, FaultSpec) for f in factories
        )
        if not speccable:
            if require:
                raise ValueError(
                    "parallel execution needs picklable run specs: build the "
                    "Campaign from a SystemSpec (or registered system name) "
                    "and pass FaultSpec entries, not closures"
                )
            return None
        return [
            RunSpec(
                system=self.system_spec,
                fault=factory,
                warmup=self.warmup,
                observation=self.observation,
                transient_duration=self.transient_duration,
                seed=seed + index,
            )
            for index, factory in enumerate(factories)
        ]

    def _execute_parallel(
        self,
        specs: List[RunSpec],
        workers: int,
        progress: Optional[ProgressCallback],
        chunksize: Optional[int],
    ) -> List[RunResult]:
        total = len(specs)
        if chunksize is None:
            chunksize = max(1, -(-total // (workers * 4)))
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        chunks = [specs[i:i + chunksize] for i in range(0, total, chunksize)]
        collected: List[Optional[List[RunResult]]] = [None] * len(chunks)
        done = 0
        timed = self._tm_enabled
        worker_fn = execute_chunk_timed if timed else execute_chunk
        busy_seconds = 0.0
        begin = perf_counter() if timed else 0.0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(worker_fn, chunk): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                index = futures[future]
                outcome = future.result()
                if timed:
                    collected[index], durations = outcome
                    busy_seconds += sum(durations)
                    self._tm_record_runs(durations)
                else:
                    collected[index] = outcome
                done += len(collected[index])
                if progress is not None:
                    progress(done, total)
        if timed:
            elapsed = perf_counter() - begin
            if elapsed > 0.0:
                self._tm_utilization.set(busy_seconds / (elapsed * workers))
        return [run for chunk in collected for run in chunk]

    def _tm_record_runs(self, durations: Sequence[float]) -> None:
        self._tm_runs.inc(len(durations))
        for duration in durations:
            self._tm_run_seconds.observe(duration)

    # ------------------------------------------------------------------
    def _run_one(self, factory: FaultFactory) -> RunResult:
        system = self.system_factory()
        system.run_until(self.warmup)
        fault = factory(system)
        injector = ErrorInjector(system.target)
        inject_time = system.now()
        injector.inject_now(fault)
        if self.transient_duration is not None:
            system.target.kernel.queue.schedule(
                inject_time + self.transient_duration,
                lambda: fault.restore(system.target),
                label=f"restore:{fault.name}",
                persistent=True,
            )
        system.run_until(inject_time + self.observation)
        detections = {
            det.name: det.first_detection_after(inject_time)
            for det in system.detectors
        }
        return RunResult(
            fault_name=fault.name,
            fault_class=type(fault).__name__,
            expected_error=fault.expected_error,
            inject_time=inject_time,
            detections=detections,
        )
