"""Picklable run specs for parallel injection campaigns.

``Campaign.execute`` historically took closures — a system factory plus
one fault factory per run.  Closures cannot cross a process boundary,
so scaling a campaign across workers needs a level of indirection:
**named** factories.  This module keeps two registries,

* **system builders** — ``name -> (**params) -> CampaignSystem`` —
  registered by the experiment modules (``coverage``, ``latency``) and
  by applications that want their systems campaign-able,
* **fault builders** — ``name -> (system, **params) -> FaultModel`` —
  one per catalogue class in :mod:`repro.faults.models`, registered
  below.

A run is then fully described by the picklable tuple
``(system_spec, fault_spec, warmup, observation, transient_duration,
seed)`` — a :class:`RunSpec` — and reconstructed verbatim inside a
worker process.  :class:`FaultSpec` is itself callable with the
``FaultFactory`` signature, so spec-based campaigns run unchanged on
the serial path too: parallel and serial execution share one run
implementation (:func:`execute_run`), which is what makes the
bit-for-bit equivalence guarantee testable.

Builtin specs resolve in any worker (the registry lazily imports their
provider modules).  Custom registrations travel to workers via fork on
POSIX; under a ``spawn`` start method, perform the registration at
import time of a module the worker also imports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import models as _models

#: ``(**params) -> CampaignSystem``
SystemBuilder = Callable[..., Any]
#: ``(system, **params) -> FaultModel``
FaultBuilder = Callable[..., Any]

_SYSTEM_BUILDERS: Dict[str, SystemBuilder] = {}
_FAULT_BUILDERS: Dict[str, FaultBuilder] = {}

#: Modules that register the builtin system builders on import.  Looked
#: up lazily (inside :func:`_ensure_builtins`) so a freshly forked or
#: spawned worker resolves ``SystemSpec("coverage")`` without the parent
#: having to pre-import anything.
_BUILTIN_PROVIDERS = (
    "repro.experiments.coverage",
    "repro.experiments.latency",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import importlib

    for module in _BUILTIN_PROVIDERS:
        importlib.import_module(module)


def register_system(name: str, builder: Optional[SystemBuilder] = None):
    """Register a named system builder (usable as a decorator)."""

    def _register(fn: SystemBuilder) -> SystemBuilder:
        _SYSTEM_BUILDERS[name] = fn
        return fn

    return _register if builder is None else _register(builder)


def register_fault(name: str, builder: Optional[FaultBuilder] = None):
    """Register a named fault builder (usable as a decorator)."""

    def _register(fn: FaultBuilder) -> FaultBuilder:
        _FAULT_BUILDERS[name] = fn
        return fn

    return _register if builder is None else _register(builder)


def registered_systems() -> List[str]:
    _ensure_builtins()
    return sorted(_SYSTEM_BUILDERS)


def registered_faults() -> List[str]:
    _ensure_builtins()
    return sorted(_FAULT_BUILDERS)


def _freeze_params(params: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class SystemSpec:
    """A named, parameterized system factory — picklable."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "SystemSpec":
        return cls(name, _freeze_params(params))

    def build(self):
        _ensure_builtins()
        try:
            builder = _SYSTEM_BUILDERS[self.name]
        except KeyError:
            raise KeyError(
                f"unknown system spec {self.name!r}; registered: "
                f"{registered_systems()}"
            ) from None
        return builder(**dict(self.params))

    # A SystemSpec is directly usable as a ``SystemFactory``.
    def __call__(self):
        return self.build()


@dataclass(frozen=True)
class FaultSpec:
    """A named, parameterized fault factory — picklable.

    Callable with the ``FaultFactory`` signature (``system ->
    FaultModel``), so a list of specs drops into ``Campaign.execute``
    wherever closures were accepted before.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "FaultSpec":
        return cls(name, _freeze_params(params))

    def build(self, system):
        _ensure_builtins()
        try:
            builder = _FAULT_BUILDERS[self.name]
        except KeyError:
            raise KeyError(
                f"unknown fault spec {self.name!r}; registered: "
                f"{registered_faults()}"
            ) from None
        return builder(system, **dict(self.params))

    def __call__(self, system):
        return self.build(system)


@dataclass(frozen=True)
class RunSpec:
    """One injection experiment, fully described by picklable values."""

    system: SystemSpec
    fault: FaultSpec
    warmup: int
    observation: int
    transient_duration: Optional[int] = None
    seed: int = 0


def execute_run(spec: RunSpec):
    """Run one experiment from its spec — the worker entry point.

    Used identically by the serial path, so ``workers=1`` and
    ``workers=N`` execute the same code and the merged results compare
    bit-for-bit.  The seed pins ``random`` before the system is built;
    today's builders are deterministic, but a stochastic builder (e.g.
    a CAN bus with corruption probability) stays reproducible per run.
    """
    from .campaigns import Campaign

    random.seed(spec.seed)
    campaign = Campaign(
        spec.system,
        warmup=spec.warmup,
        observation=spec.observation,
        transient_duration=spec.transient_duration,
    )
    return campaign._run_one(spec.fault)


def execute_chunk(specs: Sequence[RunSpec]):
    """Run a batch of specs in one worker call.

    Chunking amortizes pickling and interpreter scheduling over many
    runs; a campaign of hundreds of 10 ms-scale simulations would
    otherwise spend a visible fraction of its wall clock on dispatch.
    """
    return [execute_run(spec) for spec in specs]


def execute_chunk_timed(specs: Sequence[RunSpec]):
    """Like :func:`execute_chunk`, plus per-run wall-clock seconds.

    Returns ``(results, durations)`` with ``durations[i]`` the wall time
    of ``specs[i]``.  Dispatched by telemetry-enabled campaigns only —
    the untimed path stays byte-identical for everyone else — and the
    timing wraps :func:`execute_run` from the outside, so the run itself
    is the same code either way.
    """
    results = []
    durations = []
    for spec in specs:
        begin = perf_counter()
        results.append(execute_run(spec))
        durations.append(perf_counter() - begin)
    return results, durations


# ---------------------------------------------------------------------------
# Builtin fault builders: one per catalogue class (§4.5).  Builders take
# the freshly built system first so faults that need system handles
# (like the coverage campaign's runaway-task fault) fit the same shape.
# ---------------------------------------------------------------------------

register_fault(
    "blocked",
    lambda system, runnable: _models.BlockedRunnableFault(runnable),
)
register_fault(
    "time_scalar",
    lambda system, task, scalar: _models.TimeScalarFault(task, scalar),
)
register_fault(
    "loop_count",
    lambda system, runnable, repeat=3: _models.LoopCountFault(runnable, repeat),
)
register_fault(
    "skip",
    lambda system, chart, skipped: _models.SkipRunnableFault(chart, skipped),
)
register_fault(
    "invalid_branch",
    lambda system, chart, at_step, branch_to: _models.InvalidBranchFault(
        chart, at_step, branch_to
    ),
)
register_fault(
    "hb_corrupt",
    lambda system, runnable, reported_as: _models.HeartbeatCorruptionFault(
        runnable, reported_as
    ),
)
register_fault(
    "hb_omit",
    lambda system, runnable: _models.HeartbeatOmissionFault(runnable),
)
register_fault(
    "isr_storm",
    lambda system, period, isr_duration, name="storm": _models.InterruptStormFault(
        period, isr_duration, name=name
    ),
)
