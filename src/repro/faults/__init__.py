"""Error injection framework: fault models, injector, campaigns (§4.5)."""

from .campaigns import (
    Campaign,
    CampaignResult,
    CampaignSystem,
    DetectionRecorder,
    RunResult,
    watchdog_detector,
)
from .injector import ErrorInjector, InjectionRecord
from .registry import (
    FaultSpec,
    RunSpec,
    SystemSpec,
    register_fault,
    register_system,
    registered_faults,
    registered_systems,
)
from .models import (
    BlockedRunnableFault,
    FaultModel,
    FaultTarget,
    HeartbeatCorruptionFault,
    HeartbeatOmissionFault,
    InterruptStormFault,
    InvalidBranchFault,
    LoopCountFault,
    SkipRunnableFault,
    TimeScalarFault,
)

__all__ = [
    "BlockedRunnableFault",
    "Campaign",
    "CampaignResult",
    "CampaignSystem",
    "DetectionRecorder",
    "ErrorInjector",
    "FaultModel",
    "FaultSpec",
    "FaultTarget",
    "HeartbeatCorruptionFault",
    "HeartbeatOmissionFault",
    "InjectionRecord",
    "InterruptStormFault",
    "InvalidBranchFault",
    "LoopCountFault",
    "RunResult",
    "RunSpec",
    "SkipRunnableFault",
    "SystemSpec",
    "TimeScalarFault",
    "register_fault",
    "register_system",
    "registered_faults",
    "registered_systems",
    "watchdog_detector",
]
