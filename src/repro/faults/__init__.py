"""Error injection framework: fault models, injector, campaigns (§4.5)."""

from .campaigns import (
    Campaign,
    CampaignResult,
    CampaignSystem,
    DetectionRecorder,
    RunResult,
    watchdog_detector,
)
from .injector import ErrorInjector, InjectionRecord
from .models import (
    BlockedRunnableFault,
    FaultModel,
    FaultTarget,
    HeartbeatCorruptionFault,
    HeartbeatOmissionFault,
    InterruptStormFault,
    InvalidBranchFault,
    LoopCountFault,
    SkipRunnableFault,
    TimeScalarFault,
)

__all__ = [
    "BlockedRunnableFault",
    "Campaign",
    "CampaignResult",
    "CampaignSystem",
    "DetectionRecorder",
    "ErrorInjector",
    "FaultModel",
    "FaultTarget",
    "HeartbeatCorruptionFault",
    "HeartbeatOmissionFault",
    "InjectionRecord",
    "InterruptStormFault",
    "InvalidBranchFault",
    "LoopCountFault",
    "RunResult",
    "SkipRunnableFault",
    "TimeScalarFault",
    "watchdog_detector",
]
