"""Fault models for error injection (§4.5).

"Stateflow is used to manipulate the execution frequency and sequence of
runnables by changing the timing parameter of runnables, manipulation of
loop counters and building invalid execution branches."  Each class here
is one such manipulation, applied to a :class:`FaultTarget` (the handles
into a built system).  Faults are reversible: ``inject()`` activates the
manipulation, ``restore()`` removes it, so campaigns can model both
permanent and transient faults.

Catalogue (paper mechanism → class):

* blocked / starved runnable        → :class:`BlockedRunnableFault`
* changed timing parameter (slower) → :class:`TimeScalarFault` (scalar > 1)
* excessive dispatch (faster)       → :class:`TimeScalarFault` (scalar < 1)
* manipulated loop counter          → :class:`LoopCountFault`
* invalid execution branch          → :class:`InvalidBranchFault`,
  :class:`SkipRunnableFault`
* corrupted program counter         → :class:`HeartbeatCorruptionFault`
* lost glue code                    → :class:`HeartbeatOmissionFault`
* CPU theft by interrupt storm      → :class:`InterruptStormFault`
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..kernel.alarms import Alarm, AlarmTable
from ..kernel.isr import Isr
from ..kernel.runnable import Runnable, SequenceChart
from ..kernel.scheduler import Kernel
from ..kernel.tracing import TraceKind


@dataclass
class FaultTarget:
    """Handles a fault model needs to manipulate a built system."""

    kernel: Kernel
    runnables: Dict[str, Runnable]
    charts: Dict[str, SequenceChart] = field(default_factory=dict)
    alarms: Optional[AlarmTable] = None

    @classmethod
    def from_ecu(cls, ecu) -> "FaultTarget":
        """Build a target from a :class:`repro.platform.Ecu`."""
        return cls(
            kernel=ecu.kernel,
            runnables=dict(ecu.system.runnables),
            charts=dict(ecu.system.charts),
            alarms=ecu.alarms,
        )


class FaultModel:
    """Base class: a reversible manipulation of the target system."""

    #: Which watchdog error type this fault is *expected* to provoke
    #: (ground truth for coverage accounting); subclasses override.
    expected_error = "unspecified"

    def __init__(self, name: str) -> None:
        self.name = name
        self.active = False
        self.injected_at: Optional[int] = None

    def inject(self, target: FaultTarget) -> None:
        """Activate the fault."""
        if self.active:
            return
        self.active = True
        self.injected_at = target.kernel.clock.now
        target.kernel.trace.record(
            target.kernel.clock.now,
            TraceKind.FAULT_INJECTED,
            self.name,
            fault_class=type(self).__name__,
        )
        self._apply(target)

    def restore(self, target: FaultTarget) -> None:
        """Deactivate the fault (transient fault recovery)."""
        if not self.active:
            return
        self.active = False
        self._revert(target)
        target.kernel.trace.record(
            target.kernel.clock.now,
            TraceKind.CUSTOM,
            self.name,
            event="fault_restored",
        )

    # subclass hooks -----------------------------------------------------
    def _apply(self, target: FaultTarget) -> None:
        raise NotImplementedError

    def _revert(self, target: FaultTarget) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} active={self.active}>"


class BlockedRunnableFault(FaultModel):
    """The runnable hangs: it is never dispatched again ("an object hangs
    as a result of a requested resource being blocked").  Provokes
    aliveness errors, and program-flow errors when the runnable sits
    inside a monitored sequence."""

    expected_error = "aliveness"

    def __init__(self, runnable: str) -> None:
        super().__init__(f"blocked:{runnable}")
        self.runnable = runnable

    def _apply(self, target: FaultTarget) -> None:
        target.runnables[self.runnable].enabled = False

    def _revert(self, target: FaultTarget) -> None:
        target.runnables[self.runnable].enabled = True


class TimeScalarFault(FaultModel):
    """Scales a task's release period ("a time scalar is connected to a
    slider instrument to change the execution frequency", §4.5).

    ``scalar > 1`` slows the task (aliveness errors: too few heartbeats
    per monitoring period); ``scalar < 1`` speeds it up (arrival-rate
    errors: excessive dispatch)."""

    def __init__(self, task: str, scalar: float) -> None:
        super().__init__(f"time_scalar:{task}:{scalar}")
        if scalar <= 0:
            raise ValueError("time scalar must be > 0")
        self.task = task
        self.scalar = scalar
        self.expected_error = "aliveness" if scalar > 1 else "arrival_rate"
        self._original_cycle: Optional[int] = None

    def _alarm(self, target: FaultTarget) -> Alarm:
        if target.alarms is None:
            raise ValueError("target has no alarm table")
        return target.alarms.get(f"{self.task}Alarm")

    def _apply(self, target: FaultTarget) -> None:
        alarm = self._alarm(target)
        self._original_cycle = alarm.cycle
        new_cycle = max(1, int(round(alarm.cycle * self.scalar)))
        if alarm.armed:
            alarm.cancel()
        alarm.set_rel(new_cycle, new_cycle)

    def _revert(self, target: FaultTarget) -> None:
        alarm = self._alarm(target)
        if self._original_cycle is None:
            return
        if alarm.armed:
            alarm.cancel()
        alarm.set_rel(self._original_cycle, self._original_cycle)
        self._original_cycle = None


class LoopCountFault(FaultModel):
    """A corrupted loop counter repeats the runnable ``repeat`` times per
    activation — more heartbeats than hypothesised (arrival rate), and
    self-loop transitions the flow table may not allow."""

    expected_error = "arrival_rate"

    def __init__(self, runnable: str, repeat: int = 3) -> None:
        super().__init__(f"loop_count:{runnable}:{repeat}")
        if repeat < 2:
            raise ValueError("repeat must be >= 2 to be a fault")
        self.runnable = runnable
        self.repeat = repeat

    def _apply(self, target: FaultTarget) -> None:
        target.runnables[self.runnable].repeat = self.repeat

    def _revert(self, target: FaultTarget) -> None:
        target.runnables[self.runnable].repeat = 1


class SkipRunnableFault(FaultModel):
    """Invalid execution branch that jumps *over* one runnable of a
    chart's sequence (predecessor connects directly to the successor).
    Provokes program-flow errors, plus aliveness errors for the skipped
    runnable."""

    expected_error = "program_flow"

    def __init__(self, chart: str, skipped: str) -> None:
        super().__init__(f"skip:{chart}:{skipped}")
        self.chart = chart
        self.skipped = skipped

    def _apply(self, target: FaultTarget) -> None:
        chart = target.charts[self.chart]
        sequence = chart.runnables
        skipped = self.skipped

        def decide(task, step, previous):
            index = 0 if previous is None else sequence.index(previous) + 1
            while index < len(sequence) and sequence[index].name == skipped:
                index += 1
            return sequence[index] if index < len(sequence) else None

        chart.decide = decide

    def _revert(self, target: FaultTarget) -> None:
        target.charts[self.chart].reset_decision()


class InvalidBranchFault(FaultModel):
    """Invalid execution branch: at step ``at_step`` the chart branches
    to ``branch_to`` instead of the nominal runnable ("building invalid
    execution branches", §4.5)."""

    expected_error = "program_flow"

    def __init__(self, chart: str, at_step: int, branch_to: str) -> None:
        super().__init__(f"branch:{chart}:{at_step}->{branch_to}")
        self.chart = chart
        self.at_step = at_step
        self.branch_to = branch_to

    def _apply(self, target: FaultTarget) -> None:
        chart = target.charts[self.chart]
        nominal = chart._nominal_decide
        wrong = chart.by_name[self.branch_to]

        def decide(task, step, previous):
            if step == self.at_step:
                return wrong
            return nominal(task, step, previous)

        chart.decide = decide

    def _revert(self, target: FaultTarget) -> None:
        target.charts[self.chart].reset_decision()


class HeartbeatCorruptionFault(FaultModel):
    """Program-counter corruption analogue: the glue code reports a wrong
    runnable identity.  The watchdog sees an impossible execution
    sequence (program-flow error) and misses heartbeats of the real
    runnable (aliveness error)."""

    expected_error = "program_flow"

    def __init__(self, runnable: str, reported_as: str) -> None:
        super().__init__(f"hb_corrupt:{runnable}->{reported_as}")
        self.runnable = runnable
        self.reported_as = reported_as
        self._original_name: Optional[str] = None

    def _apply(self, target: FaultTarget) -> None:
        runnable = target.runnables[self.runnable]
        self._original_name = runnable.name
        runnable.name = self.reported_as

    def _revert(self, target: FaultTarget) -> None:
        if self._original_name is not None:
            target.runnables[self.runnable].name = self._original_name
            self._original_name = None


class HeartbeatOmissionFault(FaultModel):
    """The glue code is lost (integration fault): the runnable still
    executes but no longer reports.  Detected as an aliveness error —
    a false positive from the application's point of view, which is why
    glue-code generation must be automatic."""

    expected_error = "aliveness"

    def __init__(self, runnable: str) -> None:
        super().__init__(f"hb_omit:{runnable}")
        self.runnable = runnable
        self._saved_glue = None

    def _apply(self, target: FaultTarget) -> None:
        runnable = target.runnables[self.runnable]
        self._saved_glue = list(runnable.exit_glue)
        runnable.exit_glue.clear()

    def _revert(self, target: FaultTarget) -> None:
        if self._saved_glue is not None:
            target.runnables[self.runnable].exit_glue.extend(self._saved_glue)
            self._saved_glue = None


class InterruptStormFault(FaultModel):
    """An interrupt storm steals CPU from every task: application
    runnables slip their periods (aliveness errors across the board).
    This is the classic fault an ECU-level hardware watchdog *also*
    sees, used to compare detection granularity."""

    expected_error = "aliveness"

    def __init__(self, period: int, isr_duration: int, *, name: str = "storm") -> None:
        super().__init__(f"isr_storm:{name}")
        if period <= 0 or isr_duration <= 0:
            raise ValueError("period and duration must be > 0")
        self.period = period
        self.isr_duration = isr_duration
        self._isr: Optional[Isr] = None

    def _apply(self, target: FaultTarget) -> None:
        kernel = target.kernel
        fault = self

        def handler() -> None:
            if not fault.active:
                return

        self._isr = Isr(self.name, kernel, handler, duration=self.isr_duration)

        def fire_and_rearm() -> None:
            if not fault.active or fault._isr is None:
                return
            fault._isr.fire()
            kernel.queue.schedule(
                kernel.clock.now + fault.period, fire_and_rearm,
                label=fault.name, persistent=True,
            )

        kernel.queue.schedule(
            kernel.clock.now + self.period, fire_and_rearm, label=self.name,
            persistent=True,
        )

    def _revert(self, target: FaultTarget) -> None:
        self._isr = None
