"""Error injector: schedules fault activation/restoration at runtime.

The paper triggers error injection from ControlDesk "during the
execution of the applications" — i.e. at chosen instants of a running
experiment.  :class:`ErrorInjector` provides that: faults are armed at
absolute simulation times, optionally restored later (transient faults),
and every action is logged both in the kernel trace and in the
injector's own campaign log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .models import FaultModel, FaultTarget


@dataclass
class InjectionRecord:
    """Bookkeeping for one scheduled injection."""

    fault: FaultModel
    inject_time: int
    restore_time: Optional[int]


class ErrorInjector:
    """Schedules and tracks fault injections against one target system."""

    def __init__(self, target: FaultTarget) -> None:
        self.target = target
        self.records: List[InjectionRecord] = []

    # ------------------------------------------------------------------
    def inject_now(self, fault: FaultModel) -> InjectionRecord:
        """Activate a fault immediately."""
        fault.inject(self.target)
        record = InjectionRecord(
            fault=fault, inject_time=self.target.kernel.clock.now, restore_time=None
        )
        self.records.append(record)
        return record

    def inject_at(
        self,
        when: int,
        fault: FaultModel,
        *,
        restore_at: Optional[int] = None,
    ) -> InjectionRecord:
        """Schedule activation at an absolute time; optionally schedule
        automatic restoration (transient fault)."""
        if restore_at is not None and restore_at <= when:
            raise ValueError("restore_at must be after the injection time")
        record = InjectionRecord(fault=fault, inject_time=when, restore_time=restore_at)
        self.records.append(record)
        self.target.kernel.queue.schedule(
            when, lambda: fault.inject(self.target), label=f"inject:{fault.name}", persistent=True
        )
        if restore_at is not None:
            self.target.kernel.queue.schedule(
                restore_at,
                lambda: fault.restore(self.target),
                label=f"restore:{fault.name}",
                persistent=True,
            )
        return record

    def restore_now(self, fault: FaultModel) -> None:
        """Deactivate a fault immediately."""
        fault.restore(self.target)
        for record in self.records:
            if record.fault is fault and record.restore_time is None:
                record.restore_time = self.target.kernel.clock.now

    def restore_all(self) -> None:
        """Deactivate every active fault."""
        for record in self.records:
            if record.fault.active:
                self.restore_now(record.fault)

    # ------------------------------------------------------------------
    def active_faults(self) -> List[FaultModel]:
        """Currently active fault models."""
        seen = []
        for record in self.records:
            if record.fault.active and record.fault not in seen:
                seen.append(record.fault)
        return seen
