"""wdlint — static analyzer for Software Watchdog fault hypotheses.

Public surface:

* :func:`lint_hypothesis` — run every analysis (flow graph, counter
  feasibility, thresholds, optional system cross-checks) over one
  :class:`~repro.core.hypothesis.FaultHypothesis`,
* :func:`lint_flow_table` / :func:`lint_flow_pairs` — flow-graph-only
  analysis, usable on mined :class:`~repro.core.flowcheck.FlowTable`\\ s,
* :class:`Diagnostic` / :class:`LintReport` / :class:`Severity` — the
  structured result model with text and JSON renderers,
* :data:`CODES` — the stable diagnostic-code registry,
* :class:`LintError` / :class:`LintWarning` — the construction-time
  ``lint="error"`` / ``lint="warn"`` policies of
  :class:`~repro.core.watchdog.SoftwareWatchdog`,
* :func:`run_lint` — the ``python -m repro lint`` driver.
"""

from .analyzer import lint_flow_pairs, lint_flow_table, lint_hypothesis
from .cli import BUILTIN_TARGETS, lint_builtin, lint_file, run_lint
from .diagnostics import (
    CODES,
    Diagnostic,
    LintError,
    LintReport,
    LintWarning,
    Severity,
    make_diagnostic,
)

__all__ = [
    "BUILTIN_TARGETS",
    "CODES",
    "Diagnostic",
    "LintError",
    "LintReport",
    "LintWarning",
    "Severity",
    "lint_builtin",
    "lint_file",
    "lint_flow_pairs",
    "lint_flow_table",
    "lint_hypothesis",
    "make_diagnostic",
    "run_lint",
]
