"""wdlint — static analysis of fault-hypothesis configurations.

The watchdog is only as good as its configuration: an unreachable
runnable in the flow table, an unsatisfiable ``min_heartbeats`` /
``max_heartbeats`` pair or a threshold for an error type that can never
occur surface — if ever — as runtime false positives or blind spots.
This module checks the §3.2.1–§3.2.3 design artefacts *statically*,
before deployment:

* **flow-graph analysis** (``WD1xx``) — reachability of the look-up
  table from its entry points, dead transitions, per-task entry points,
  and transitions the per-task stream keying can never observe,
* **counter-bound feasibility** (``WD2xx``) — windows where the
  aliveness minimum forces a heartbeat rate the arrival maximum must
  reject (a guaranteed false positive), vacuous checks, and TSI
  thresholds validated at configuration time instead of deep in the
  monitoring hot path,
* **system cross-checks** (``WD3xx``) — per-runnable activation rates
  derived from the task mapping / schedule periods (tool-chain step 2)
  bracketed against the hypothesis windows, and task-attribution
  consistency.

The analyzer never mutates the hypothesis and never raises on a broken
one — defects come back as structured :class:`~.diagnostics.Diagnostic`
objects so callers (CLI, CI, the construction-time ``lint=`` knob)
decide the policy.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.flowcheck import FlowTable
from ..core.hypothesis import FaultHypothesis
from ..core.reports import ErrorType
from .diagnostics import Diagnostic, LintReport, make_diagnostic

FlowPair = Tuple[Optional[str], str]


# ----------------------------------------------------------------------
# flow-graph analysis (WD1xx)
# ----------------------------------------------------------------------
def lint_flow_pairs(
    pairs: Iterable[FlowPair],
    *,
    known: Set[str],
    task_of: Optional[Dict[str, Optional[str]]] = None,
) -> List[Diagnostic]:
    """Analyze a predecessor→successor pair list as a graph.

    ``known`` is the universe of hypothesized runnables (pairs that step
    outside it are dead transitions); ``task_of`` attributes runnables to
    tasks for the stream-keying checks.  Usable both on a hypothesis'
    ``flow_pairs`` and on a mined :class:`FlowTable` (via
    :func:`lint_flow_table`).
    """
    task_of = task_of or {}
    pairs = list(pairs)
    diagnostics: List[Diagnostic] = []
    if not pairs:
        return diagnostics

    monitored: Set[str] = set()
    entries: Set[str] = set()
    for pred, succ in pairs:
        if pred is None:
            entries.add(succ)
        else:
            monitored.add(pred)
        monitored.add(succ)

    # WD102 — dead transitions stepping outside the hypothesis.
    for name in sorted(monitored - known):
        offending = [
            [pred, succ] for pred, succ in pairs if name in (pred, succ)
        ]
        diagnostics.append(make_diagnostic(
            "WD102",
            f"flow table references {name!r}, which the hypothesis does "
            "not monitor — the transition can never match a configured "
            "runnable",
            subject=name,
            pairs=offending,
        ))

    # WD104 — transitions across task streams.  ``stream_key`` tracks one
    # stream per task, so a pair whose endpoints live on different tasks
    # is never looked up: the successor's heartbeat lands in another
    # stream whose predecessor is not ``pred``.
    cross_task: Set[FlowPair] = set()
    for pred, succ in pairs:
        if pred is None:
            continue
        pred_task = task_of.get(pred)
        succ_task = task_of.get(succ)
        if pred_task and succ_task and pred_task != succ_task:
            if (pred, succ) in cross_task:
                continue
            cross_task.add((pred, succ))
            diagnostics.append(make_diagnostic(
                "WD104",
                f"transition {pred!r} → {succ!r} crosses task streams "
                f"({pred_task!r} → {succ_task!r}) and can never be "
                "observed: streams are keyed per task",
                subject=succ,
                predecessor=pred, successor=succ,
                predecessor_task=pred_task, successor_task=succ_task,
            ))

    # WD101 — reachability from the entry points over *observable* edges
    # (cross-task edges are excluded: they can never fire, so they grant
    # no reachability).
    successors: Dict[Optional[str], Set[str]] = {}
    for pred, succ in pairs:
        if pred is not None and (pred, succ) in cross_task:
            continue
        successors.setdefault(pred, set()).add(succ)
    reachable: Set[str] = set()
    frontier = deque(successors.get(None, ()))
    while frontier:
        node = frontier.popleft()
        if node in reachable:
            continue
        reachable.add(node)
        frontier.extend(successors.get(node, ()))
    for name in sorted((monitored & known) - reachable):
        diagnostics.append(make_diagnostic(
            "WD101",
            f"runnable {name!r} is flow-monitored but unreachable from "
            "every entry point: each observation of it raises a "
            "PROGRAM_FLOW error",
            subject=name,
            entry_points=sorted(entries),
        ))

    # WD103 — every task whose runnables participate in flow monitoring
    # needs at least one entry point among them, or the first observation
    # of every activation flags.
    streams: Dict[Optional[str], Set[str]] = {}
    for name in monitored & known:
        streams.setdefault(task_of.get(name), set()).add(name)
    for task in sorted(streams, key=lambda t: (t is None, t or "")):
        members = streams[task]
        if entries & members:
            continue
        label = task if task is not None else "<global>"
        diagnostics.append(make_diagnostic(
            "WD103",
            f"task {label!r} has flow-monitored runnables "
            f"({', '.join(sorted(members))}) but none of them is a legal "
            "entry point: every activation starts with a PROGRAM_FLOW "
            "error",
            subject=task,
            members=sorted(members),
        ))
    return diagnostics


def lint_flow_table(
    table: FlowTable,
    *,
    task_of: Optional[Dict[str, Optional[str]]] = None,
    source: Optional[str] = None,
) -> LintReport:
    """Lint a stand-alone :class:`FlowTable` (e.g. one mined from a
    golden trace).  The table's own runnable set is the universe, so only
    graph-shape diagnostics (WD101/WD103/WD104) can fire."""
    pairs = table.pairs()
    known = {succ for _, succ in pairs} | {
        pred for pred, _ in pairs if pred is not None
    }
    diagnostics = lint_flow_pairs(pairs, known=known, task_of=task_of)
    return _stamped(LintReport(diagnostics=diagnostics, source=source))


# ----------------------------------------------------------------------
# counter-bound feasibility (WD2xx)
# ----------------------------------------------------------------------
def _counter_diagnostics(hypothesis: FaultHypothesis) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for name, hyp in hypothesis.runnables.items():
        if not hyp.active:
            continue
        # The aliveness check demands ≥ min/aliveness_period heartbeats
        # per cycle on average; the arrival check tolerates at most
        # max/arrival_period.  If the demanded rate exceeds the tolerated
        # one, any compliant runnable trips one of the two checks —
        # compare cross-multiplied to stay in integers.
        if hyp.min_heartbeats * hyp.arrival_period > (
                hyp.max_heartbeats * hyp.aliveness_period):
            diagnostics.append(make_diagnostic(
                "WD201",
                f"aliveness demands ≥{hyp.min_heartbeats} heartbeats per "
                f"{hyp.aliveness_period} cycles but arrival tolerates "
                f"≤{hyp.max_heartbeats} per {hyp.arrival_period} cycles: "
                "every execution rate violates one of the two bounds",
                subject=name,
                min_heartbeats=hyp.min_heartbeats,
                aliveness_period=hyp.aliveness_period,
                max_heartbeats=hyp.max_heartbeats,
                arrival_period=hyp.arrival_period,
            ))
            continue
        if hyp.min_heartbeats == 0:
            diagnostics.append(make_diagnostic(
                "WD202",
                "min_heartbeats is 0 on an active runnable: the aliveness "
                "check can never fire (vacuous)",
                subject=name,
                aliveness_period=hyp.aliveness_period,
            ))
        if hyp.max_heartbeats == 0:
            diagnostics.append(make_diagnostic(
                "WD203",
                "max_heartbeats is 0 on an active runnable: every single "
                "heartbeat raises an ARRIVAL_RATE error",
                subject=name,
                arrival_period=hyp.arrival_period,
            ))
    return diagnostics


def _threshold_diagnostics(hypothesis: FaultHypothesis) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    thresholds = hypothesis.thresholds
    if thresholds.default < 1:
        diagnostics.append(make_diagnostic(
            "WD204",
            f"default TSI threshold {thresholds.default} is below 1: the "
            "first error of any type must already flip the task state, "
            "which a threshold below 1 cannot express",
            subject=None,
            threshold=thresholds.default,
        ))
    for error_type, value in thresholds.per_type.items():
        if value < 1:
            diagnostics.append(make_diagnostic(
                "WD204",
                f"TSI threshold {value} for {error_type.value} is below 1",
                subject=error_type.value,
                threshold=value,
                error_type=error_type.value,
            ))
    if ErrorType.PROGRAM_FLOW in thresholds.per_type and not hypothesis.flow_pairs:
        diagnostics.append(make_diagnostic(
            "WD105",
            "a PROGRAM_FLOW threshold is configured but the flow table is "
            "empty: no flow check exists that could ever reach it",
            subject=ErrorType.PROGRAM_FLOW.value,
            threshold=thresholds.per_type[ErrorType.PROGRAM_FLOW],
        ))
    return diagnostics


# ----------------------------------------------------------------------
# system cross-checks (WD3xx)
# ----------------------------------------------------------------------
def _system_diagnostics(
    hypothesis: FaultHypothesis,
    mapping,
    watchdog_period: int,
) -> List[Diagnostic]:
    """Bracket the hypothesis windows against the mapping's schedule.

    ``mapping`` is a :class:`~repro.platform.application.TaskMapping`
    (duck-typed: ``task_of`` and ``task_specs`` suffice) — the output of
    tool-chain step 2, which fixes every task's activation period and
    therefore every runnable's nominal heartbeat rate.
    """
    diagnostics: List[Diagnostic] = []
    for name, hyp in hypothesis.runnables.items():
        try:
            placed_task = mapping.task_of(name)
        except Exception:
            diagnostics.append(make_diagnostic(
                "WD303",
                f"runnable {name!r} is monitored but not placed anywhere "
                "in the system mapping: it can never produce heartbeats",
                subject=name,
            ))
            continue
        if hyp.task is not None and hyp.task != placed_task:
            diagnostics.append(make_diagnostic(
                "WD302",
                f"hypothesis attributes {name!r} to task {hyp.task!r} but "
                f"the mapping places it on {placed_task!r}: TSI error "
                "vectors would aggregate onto the wrong task",
                subject=name,
                hypothesis_task=hyp.task,
                mapped_task=placed_task,
            ))
        period = mapping.task_specs[placed_task].period
        if not hyp.active:
            continue
        # Aliveness side: a worst-phased window of length W over an
        # exactly P-periodic heartbeat stream contains floor(W/P)
        # heartbeats — demanding more than that alarms even on a
        # perfectly healthy, jitter-free schedule.  (The RTA-aware
        # ``analyze_hypothesis`` additionally warns about thin jitter
        # margins; lint errors only on the impossible.)
        window = hyp.aliveness_period * watchdog_period
        guaranteed = window // period
        if hyp.min_heartbeats > guaranteed:
            diagnostics.append(make_diagnostic(
                "WD301",
                f"min_heartbeats={hyp.min_heartbeats} exceeds the "
                f"{guaranteed} completions the {period}-tick task period "
                f"can deliver in a worst-phased {window}-tick aliveness "
                "window: guaranteed false positives on a healthy schedule",
                subject=name,
                bound="min_heartbeats",
                min_heartbeats=hyp.min_heartbeats,
                guaranteed=guaranteed,
                window=window,
                task_period=period,
            ))
        # Arrival side: the schedule nominally delivers
        # ceil(window/period) activations per arrival window.
        arrival_window = hyp.arrival_period * watchdog_period
        nominal = -(-arrival_window // period)
        if hyp.max_heartbeats < nominal:
            diagnostics.append(make_diagnostic(
                "WD301",
                f"max_heartbeats={hyp.max_heartbeats} is below the "
                f"{nominal} activations the {period}-tick task period "
                f"nominally delivers per {arrival_window}-tick arrival "
                "window: guaranteed false positives on a healthy schedule",
                subject=name,
                bound="max_heartbeats",
                max_heartbeats=hyp.max_heartbeats,
                nominal=nominal,
                window=arrival_window,
                task_period=period,
            ))
    return diagnostics


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def lint_hypothesis(
    hypothesis: FaultHypothesis,
    *,
    mapping=None,
    watchdog_period: Optional[int] = None,
    source: Optional[str] = None,
) -> LintReport:
    """Run every wdlint analysis over one fault hypothesis.

    Parameters
    ----------
    hypothesis:
        The configuration to analyze.  It is *not* required to pass
        ``FaultHypothesis.validate()`` — the linter reports the defects
        ``validate()`` would reject as structured diagnostics instead of
        raising on the first one.
    mapping:
        Optional :class:`~repro.platform.application.TaskMapping` to
        cross-check activation rates and task attribution against
        (requires ``watchdog_period``).
    watchdog_period:
        Check-cycle period in kernel ticks; converts the hypothesis'
        cycle-denominated windows into time for the WD3xx rate checks.
    source:
        Label stamped onto every diagnostic (file path, builtin name).
    """
    if mapping is not None and not watchdog_period:
        raise ValueError(
            "cross-checking against a mapping requires watchdog_period"
        )
    task_of = {
        name: hyp.task for name, hyp in hypothesis.runnables.items()
    }
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(lint_flow_pairs(
        hypothesis.flow_pairs,
        known=set(hypothesis.runnables),
        task_of=task_of,
    ))
    diagnostics.extend(_counter_diagnostics(hypothesis))
    diagnostics.extend(_threshold_diagnostics(hypothesis))
    if mapping is not None:
        diagnostics.extend(
            _system_diagnostics(hypothesis, mapping, watchdog_period)
        )
    return _stamped(LintReport(diagnostics=diagnostics, source=source))


def _stamped(report: LintReport) -> LintReport:
    """Stamp the report's source onto every diagnostic."""
    if report.source is not None:
        report.diagnostics = [
            Diagnostic(
                code=d.code, severity=d.severity, message=d.message,
                subject=d.subject, source=report.source, context=d.context,
            )
            for d in report.diagnostics
        ]
    return report
