"""The ``python -m repro lint`` driver.

Targets are either paths to hypothesis JSON files (the
:func:`~repro.core.config_io.hypothesis_to_dict` format) or the names of
the shipped applications — ``safespeed``, ``safelane``,
``steer-by-wire`` — whose hypotheses are regenerated from their task
mappings exactly like the tool chain does, and cross-checked against
those mappings (the WD3xx analyses need the schedule periods, which a
serialized hypothesis alone does not carry).

Exit codes (meaningful to CI):

* ``0`` — every target linted clean of errors (warnings allowed unless
  ``--strict``),
* ``1`` — at least one error-severity diagnostic (or warning, with
  ``--strict``),
* ``2`` — a target could not be loaded at all (missing file, malformed
  JSON, unknown builtin name).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from .analyzer import lint_hypothesis
from .diagnostics import LintReport

#: Builtin lintable application configurations: name → (task, priority,
#: period in watchdog periods of 10 ms).  Mirrors the central-node
#: mapping of the HIL validator rig.
_WATCHDOG_PERIOD_MS = 10


def _builtin_mapping(name: str):
    from ..kernel.clock import ms
    from ..platform.application import TaskMapping, TaskSpec

    if name == "safespeed":
        from ..apps.safespeed import RUNNABLE_SEQUENCE, SafeSpeedApp

        app = SafeSpeedApp(lambda: (0.0, 130.0), lambda throttle, brake: None)
        task, priority, period = "SafeSpeedTask", 5, ms(10)
    elif name == "safelane":
        from ..apps.safelane import RUNNABLE_SEQUENCE, SafeLaneApp

        app = SafeLaneApp(lambda: (0.0, 0.0, 1.75), lambda active, side: None)
        task, priority, period = "SafeLaneTask", 4, ms(20)
    elif name == "steer-by-wire":
        from ..apps.steer_by_wire import RUNNABLE_SEQUENCE, SteerByWireApp

        app = SteerByWireApp(lambda: 0.0, lambda: 0.0, lambda angle: None)
        task, priority, period = "SteeringTask", 8, ms(5)
    else:
        raise KeyError(name)
    mapping = TaskMapping([app.build_application()])
    mapping.add_task(TaskSpec(task, priority=priority, period=period))
    mapping.map_sequence(task, list(RUNNABLE_SEQUENCE))
    return mapping


BUILTIN_TARGETS = ("safespeed", "safelane", "steer-by-wire")


def lint_builtin(name: str) -> LintReport:
    """Regenerate and lint one shipped application's hypothesis."""
    from ..kernel.clock import ms
    from ..platform.application import SystemBuilder

    mapping = _builtin_mapping(name)
    watchdog_period = ms(_WATCHDOG_PERIOD_MS)
    hypothesis = SystemBuilder(
        mapping, watchdog_period=watchdog_period
    ).derive_hypothesis()
    return lint_hypothesis(
        hypothesis,
        mapping=mapping,
        watchdog_period=watchdog_period,
        source=name,
    )


def lint_file(path: str) -> LintReport:
    """Load a hypothesis JSON file and lint it (configuration-only: no
    mapping is available for the WD3xx cross-checks)."""
    from ..core.config_io import hypothesis_from_dict

    data = json.loads(Path(path).read_text())
    # validate=False: the linter itself reports what validate() would
    # reject (dead transitions, bad thresholds) as structured
    # diagnostics instead of dying on the first inconsistency.
    hypothesis = hypothesis_from_dict(data, validate=False)
    return lint_hypothesis(hypothesis, source=path)


def run_lint(
    targets: Optional[List[str]] = None,
    *,
    fmt: str = "text",
    strict: bool = False,
    emit: Callable[[str], None] = print,
) -> int:
    """Lint every target and render the reports; returns the exit code."""
    targets = list(targets) if targets else list(BUILTIN_TARGETS)
    reports: List[LintReport] = []
    failures: List[Tuple[str, str]] = []
    for target in targets:
        try:
            if target in BUILTIN_TARGETS:
                reports.append(lint_builtin(target))
            else:
                reports.append(lint_file(target))
        except (OSError, ValueError, KeyError) as exc:
            failures.append((target, f"{type(exc).__name__}: {exc}"))

    if fmt == "json":
        payload = {
            "ok": not failures and all(r.ok for r in reports),
            "failures": [
                {"target": target, "error": message}
                for target, message in failures
            ],
            "reports": [r.to_dict() for r in reports],
        }
        emit(json.dumps(payload, indent=2))
    else:
        for report in reports:
            emit(report.render_text())
        for target, message in failures:
            emit(f"{target}: failed to load ({message})")
        errors = sum(len(r.errors) for r in reports)
        warnings = sum(len(r.warnings) for r in reports)
        emit(f"wdlint: {len(reports)} hypothesis(es) linted, "
             f"{errors} error(s), {warnings} warning(s)")

    if failures:
        return 2
    if any(not r.ok for r in reports):
        return 1
    if strict and any(r.warnings for r in reports):
        return 1
    return 0
