"""Diagnostic model of **wdlint**, the fault-hypothesis static analyzer.

A lint run produces :class:`Diagnostic` objects — stable machine-readable
codes plus human-readable context — collected into a :class:`LintReport`
with text and JSON renderers.  The code space is partitioned by analysis
family:

* ``WD1xx`` — flow-graph analysis of the program-flow look-up table,
* ``WD2xx`` — counter-bound feasibility of the heartbeat hypothesis,
* ``WD3xx`` — cross-checks against the system mapping / schedule table.

Codes are part of the public contract: tooling (CI gates, editors,
``--format json`` consumers) keys on them, so existing codes never change
meaning and retired codes are never reused.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.hypothesis import HypothesisError


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` — the configuration will false-positive, can never fire, or
    is internally inconsistent; deployment must be blocked.
    ``WARNING`` — the configuration is legal but suspicious (vacuous
    checks, unobservable table entries); deployment may proceed.
    """

    ERROR = "error"
    WARNING = "warning"


#: Registry of every diagnostic wdlint can emit:
#: code → (slug, severity, one-line description).  The docs table in
#: ``docs/supervising_your_application.md`` mirrors this registry.
CODES: Dict[str, tuple] = {
    "WD101": ("unreachable-runnable", Severity.ERROR,
              "flow-monitored runnable is unreachable from every entry point"),
    "WD102": ("dead-transition", Severity.ERROR,
              "flow pair references a runnable the hypothesis does not monitor"),
    "WD103": ("missing-entry-point", Severity.ERROR,
              "a task's flow-monitored runnables contain no legal entry point"),
    "WD104": ("cross-task-transition", Severity.WARNING,
              "flow pair crosses task streams and can never be observed"),
    "WD105": ("unreachable-flow-threshold", Severity.WARNING,
              "PROGRAM_FLOW threshold configured but the flow table is empty"),
    "WD201": ("contradictory-bounds", Severity.ERROR,
              "aliveness minimum forces a rate above the arrival maximum"),
    "WD202": ("vacuous-aliveness", Severity.WARNING,
              "min_heartbeats == 0 on an active runnable: check never fires"),
    "WD203": ("vacuous-arrival", Severity.WARNING,
              "max_heartbeats == 0 on an active runnable: any heartbeat flags"),
    "WD204": ("invalid-threshold", Severity.ERROR,
              "TSI threshold below 1 can never be configured meaningfully"),
    "WD301": ("schedule-rate-mismatch", Severity.ERROR,
              "hypothesis window contradicts the task's scheduled rate"),
    "WD302": ("task-attribution-mismatch", Severity.ERROR,
              "hypothesis names a different task than the system mapping"),
    "WD303": ("unplaced-runnable", Severity.ERROR,
              "monitored runnable is not placed anywhere in the mapping"),
}


class LintWarning(UserWarning):
    """Python warning category used by the construction-time ``lint="warn"``
    mode, so test-suites and applications can filter wdlint output
    separately from other warnings."""


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the analyzer."""

    code: str
    severity: Severity
    message: str
    #: The runnable / task / threshold the finding is about, if any.
    subject: Optional[str] = None
    #: Where the linted hypothesis came from (file path, builtin name,
    #: watchdog name); filled in by the lint driver.
    source: Optional[str] = None
    #: Machine-readable details (the offending pair, bounds, rates, ...).
    context: Dict[str, Any] = field(default_factory=dict)

    @property
    def slug(self) -> str:
        """Stable kebab-case name of the code (e.g. ``dead-transition``)."""
        return CODES[self.code][0]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity.value,
            "subject": self.subject,
            "source": self.source,
            "message": self.message,
            "context": dict(self.context),
        }

    def __str__(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        return f"{self.severity.value} {self.code}{subject}: {self.message}"


@dataclass
class LintReport:
    """All diagnostics of one lint run over one hypothesis."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    source: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """A hypothesis is deployable when it has no error diagnostics."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No diagnostics at all, not even warnings."""
        return not self.diagnostics

    def codes(self) -> List[str]:
        """Distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "ok": self.ok,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_text(self) -> str:
        """Human-readable rendering, one diagnostic per line."""
        name = self.source or "<hypothesis>"
        if self.clean:
            return f"{name}: ok"
        head = (f"{name}: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s)")
        return "\n".join([head] + [f"  {d}" for d in self.diagnostics])

    def render_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class LintError(HypothesisError):
    """Raised by the construction-time ``lint="error"`` mode when the
    analyzer found error-severity diagnostics."""

    def __init__(self, report: LintReport) -> None:
        super().__init__(report.render_text())
        self.report = report


def make_diagnostic(
    code: str,
    message: str,
    *,
    subject: Optional[str] = None,
    source: Optional[str] = None,
    **context: Any,
) -> Diagnostic:
    """Build a diagnostic with its registry severity (codes are never
    emitted with an ad-hoc severity — the registry is the contract)."""
    severity = CODES[code][1]
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        subject=subject,
        source=source,
        context=context,
    )
