"""The EASIS architecture validator (hardware-in-the-loop rig, §4.1–4.2).

Assembles the full rig on one shared simulated time base:

* plant: vehicle dynamics + environment simulation,
* networks: chassis CAN, x-by-wire FlexRay, telematics TCP link,
  connected by the gateway node,
* nodes: driving dynamics (publishes sensed state), actuator node
  (applies commands, staleness guard), environment node (commanded speed
  limit over telematics), driver node (handwheel profile), light control
  node (warning lamp),
* the central node — the simulated AutoBox — an :class:`Ecu` hosting
  SafeSpeed, SafeLane and (optionally) the steer-by-wire controller
  under Software Watchdog supervision,
* ControlDesk-style parameter store and capture.

All application I/O travels over the simulated buses; the central ECU
has no direct reference to the vehicle model.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..apps.environment import EnvironmentSimulation, Road, SpeedLimitZone
from ..apps.safelane import SafeLaneApp
from ..apps.safespeed import SafeSpeedApp
from ..apps.steer_by_wire import SteerByWireApp
from ..apps.vehicle import Vehicle
from ..kernel.clock import ms
from ..kernel.scheduler import Kernel
from ..network.can import CanBus
from ..network.flexray import FlexRayBus, FlexRaySchedule
from ..network.frames import Message
from ..network.gateway import Gateway, Route, TcpLink
from ..platform.ecu import Ecu
from ..platform.fmf import FmfPolicy
from ..platform.application import TaskMapping, TaskSpec
from .controldesk import Capture, ParameterStore
from .nodes import (
    ActuatorNode,
    DriverNode,
    DrivingDynamicsNode,
    EnvironmentNode,
    ID_SPEED_COMMAND,
    ID_TELEMATICS_LIMIT,
    LightControlNode,
    SLOT_HANDWHEEL,
    SLOT_ROADWHEEL,
    SLOT_STEER_CMD,
    SignalStore,
    build_validator_catalog,
)

#: Default task configuration of the central node.
SAFESPEED_TASK = "SafeSpeedTask"
SAFELANE_TASK = "SafeLaneTask"
STEERING_TASK = "SteeringTask"


class HilValidator:
    """The complete simulated EASIS validator rig."""

    def __init__(
        self,
        *,
        watchdog_period: int = ms(10),
        include_steering: bool = True,
        fmf_policy: Optional[FmfPolicy] = None,
        fmf_auto_treatment: bool = True,
        road: Optional[Road] = None,
        initial_speed_kph: float = 0.0,
        driver_profile: Optional[Callable[[float], float]] = None,
        eager_arrival_detection: bool = False,
        check_strategy: str = "wheel",
        lint: str = "warn",
        telemetry=None,
        event_sink=None,
    ) -> None:
        self.kernel = Kernel()
        self.catalog = build_validator_catalog()
        self.vehicle = Vehicle()
        self.vehicle.state.speed_mps = initial_speed_kph / 3.6
        self.environment = EnvironmentSimulation(
            road=road
            or Road(
                speed_zones=[
                    SpeedLimitZone(0.0, 100.0),
                    SpeedLimitZone(2000.0, 60.0),
                    SpeedLimitZone(4000.0, 100.0),
                ]
            )
        )

        # --- networks -------------------------------------------------
        self.can = CanBus("chassis", self.kernel, bitrate_bps=500_000)
        self.flexray = FlexRayBus(
            "xbywire",
            self.kernel,
            FlexRaySchedule(
                cycle_length=ms(5),
                static_slots=4,
                static_slot_length=ms(1),
                dynamic_minislots=10,
                minislot_length=100,
            ),
        )
        self.tcp = TcpLink("telematics", self.kernel, latency=ms(2))

        self.flexray.schedule.assign_slot(SLOT_HANDWHEEL, "driver")
        self.flexray.schedule.assign_slot(SLOT_STEER_CMD, "central")
        self.flexray.schedule.assign_slot(SLOT_ROADWHEEL, "dynamics")

        central_can = self.can.attach("central")
        central_fr = self.flexray.attach("central")
        dynamics_can = self.can.attach("dynamics")
        dynamics_fr = self.flexray.attach("dynamics")
        actuator_can = self.can.attach("actuator")
        actuator_fr = self.flexray.attach("actuator")
        driver_fr = self.flexray.attach("driver")
        light_can = self.can.attach("light")
        gateway_can = self.can.attach("gateway")

        # --- gateway: telematics limit -> chassis CAN -------------------
        self.gateway = Gateway("domain-gw", self.kernel, forwarding_latency=100)
        self.gateway.add_tcp_port("tcp", self.tcp)
        self.gateway.add_can_port("can", gateway_can)

        def translate_limit(message: Message):
            return (
                self.catalog.by_name("SpeedCommand"),
                {"limit_kph": message.values()["limit_kph"]},
            )

        self.gateway.add_route(
            Route(
                source_port="tcp",
                frame_id=ID_TELEMATICS_LIMIT,
                destination_port="can",
                translate=translate_limit,
            )
        )

        # --- central node application I/O (bus-facing ports) -----------
        self.central_store = SignalStore()
        central_can.on_receive(self.central_store.ingest)
        central_fr.on_receive(self.central_store.ingest)

        store = self.central_store

        def speed_sensor() -> Tuple[float, float]:
            return (
                store.value("VehicleSpeed", "speed_kph"),
                store.value("SpeedCommand", "limit_kph", default=130.0),
            )

        def speed_actuator(throttle: float, brake: float) -> None:
            central_can.send(
                self.catalog.by_name("ActuatorCmd"),
                {"throttle": throttle, "brake": brake},
            )

        def lane_sensor() -> Tuple[float, float, float]:
            return (
                store.value("LanePosition", "offset_m"),
                store.value("LanePosition", "lat_vel_mps"),
                store.value("LanePosition", "half_width_m", default=1.75),
            )

        def lane_warner(active: bool, side: int) -> None:
            central_can.send(
                self.catalog.by_name("Warning"),
                {"active": 1.0 if active else 0.0, "side": float(side)},
            )

        self.safespeed = SafeSpeedApp(speed_sensor, speed_actuator)
        self.safelane = SafeLaneApp(lane_sensor, lane_warner)

        applications = [
            self.safespeed.build_application(wcets=[1000, 2000, 1000]),
            self.safelane.build_application(wcets=[1000, 1500, 500]),
        ]

        self.steering: Optional[SteerByWireApp] = None
        if include_steering:

            def handwheel() -> float:
                return store.value("Handwheel", "angle_rad")

            def roadwheel() -> float:
                return store.value("RoadWheel", "angle_rad")

            def steer_actuator(angle: float) -> None:
                central_fr.stage(
                    SLOT_STEER_CMD,
                    self.catalog.by_name("SteerCmd"),
                    {"angle_rad": angle},
                )

            self.steering = SteerByWireApp(handwheel, roadwheel, steer_actuator)
            applications.append(
                self.steering.build_application(wcets=[200, 600, 200])
            )

        # --- task mapping of the central node ---------------------------
        mapping = TaskMapping(applications)
        mapping.add_task(TaskSpec(SAFESPEED_TASK, priority=5, period=ms(10)))
        mapping.map_sequence(
            SAFESPEED_TASK, ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
        )
        mapping.add_task(TaskSpec(SAFELANE_TASK, priority=4, period=ms(20)))
        mapping.map_sequence(
            SAFELANE_TASK, ["GetLanePosition", "LDW_process", "Warn_process"]
        )
        if include_steering:
            mapping.add_task(TaskSpec(STEERING_TASK, priority=8, period=ms(5)))
            mapping.map_sequence(
                STEERING_TASK,
                ["ReadHandwheel", "SteeringControl", "ApplySteering"],
            )

        central_can.accept(
            self.catalog.by_name("VehicleSpeed").frame_id,
            self.catalog.by_name("LanePosition").frame_id,
            ID_SPEED_COMMAND,
        )

        self.ecu = Ecu(
            "central",
            mapping,
            kernel=self.kernel,
            watchdog_period=watchdog_period,
            watchdog_check_cost=50,
            fmf_policy=fmf_policy,
            fmf_auto_treatment=fmf_auto_treatment,
            eager_arrival_detection=eager_arrival_detection,
            check_strategy=check_strategy,
            lint=lint,
            telemetry=telemetry,
            event_sink=event_sink,
        )

        # --- peripheral nodes -------------------------------------------
        self.dynamics_node = DrivingDynamicsNode(
            self.kernel,
            self.vehicle,
            self.environment,
            self.catalog,
            dynamics_can,
            dynamics_fr,
        )
        self.actuator_node = ActuatorNode(
            self.kernel, self.vehicle, self.catalog, actuator_can, actuator_fr
        )
        self.environment_node = EnvironmentNode(
            self.kernel, self.environment, self.vehicle, self.catalog, self.tcp
        )
        self.driver_node = DriverNode(
            self.kernel, self.catalog, driver_fr, profile=driver_profile
        )
        self.light_node = LightControlNode(light_can)

        # --- ControlDesk ------------------------------------------------
        self.parameters = ParameterStore(self.kernel)
        self.capture = Capture(self.kernel, sample_period=ms(10))
        self._register_default_instruments()
        self._started = False

    # ------------------------------------------------------------------
    def _register_default_instruments(self) -> None:
        # --- sliders (the ControlDesk instruments of §4.5) -------------
        env = self.environment

        def get_commanded() -> float:
            return env.commanded_limit_kph if env.commanded_limit_kph else 0.0

        def set_commanded(value: float) -> None:
            env.commanded_limit_kph = value if value > 0 else None

        self.parameters.register(
            "commanded_limit_kph", get_commanded, set_commanded,
            description="telematics speed command (0 = none)",
        )

        # The paper's Figure 5 slider: "a time scalar is connected to a
        # slider instrument to change the execution frequency".
        scalar_state = {"value": 1.0}
        alarm = self.ecu.alarms.alarms[f"{SAFESPEED_TASK}Alarm"]
        nominal_cycle = alarm.cycle

        def get_scalar() -> float:
            return scalar_state["value"]

        def set_scalar(value: float) -> None:
            if value <= 0:
                raise ValueError("time scalar must be > 0")
            scalar_state["value"] = value
            new_cycle = max(1, int(round(nominal_cycle * value)))
            if alarm.armed:
                alarm.cancel()
            alarm.set_rel(new_cycle, new_cycle)

        self.parameters.register(
            "safespeed.time_scalar", get_scalar, set_scalar,
            description="SafeSpeed task period multiplier (Figure 5 slider)",
        )

        # --- capture probes ---------------------------------------------
        watchdog = self.ecu.watchdog
        self.capture.add_probe(
            "speed_kph", lambda: self.vehicle.state.speed_kph
        )
        self.capture.add_probe(
            "limit_kph",
            lambda: self.central_store.value("SpeedCommand", "limit_kph", 130.0),
        )
        from ..core.reports import ErrorType, MonitorState

        self.capture.add_probe(
            "AM_Result", lambda: watchdog.detected[ErrorType.ALIVENESS]
        )
        self.capture.add_probe(
            "ARM_Result", lambda: watchdog.detected[ErrorType.ARRIVAL_RATE]
        )
        self.capture.add_probe(
            "PFC_Result", lambda: watchdog.detected[ErrorType.PROGRAM_FLOW]
        )
        self.capture.add_probe(
            "TaskState_SafeSpeed",
            lambda: float(
                watchdog.task_state(SAFESPEED_TASK) is MonitorState.FAULTY
            ),
        )

    def probe_counters(self, runnable: str) -> None:
        """Add AC/CCA/ARC/CCAR probes for one runnable (Figure 5 layout)."""
        watchdog = self.ecu.watchdog
        for key in ("AC", "CCA", "ARC", "CCAR"):
            self.capture.add_probe(
                f"{runnable}.{key}",
                lambda key=key: watchdog.hbm.snapshot(runnable)[key],
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start buses, nodes and capture (idempotent)."""
        if self._started:
            return
        self._started = True
        self.flexray.start()
        self.dynamics_node.start()
        self.actuator_node.start()
        self.environment_node.start()
        self.driver_node.start()
        self.capture.start()

    def run(self, duration: int) -> None:
        """Run the whole rig for ``duration`` ticks."""
        self.start()
        self.kernel.run_for(duration)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Key outcomes for reports and tests."""
        from ..core.reports import ErrorType

        watchdog = self.ecu.watchdog
        return {
            "time_ms": self.kernel.clock.now / 1000.0,
            "vehicle_speed_kph": round(self.vehicle.state.speed_kph, 2),
            "distance_m": round(self.vehicle.state.distance_m, 1),
            "aliveness_errors": watchdog.detected[ErrorType.ALIVENESS],
            "arrival_rate_errors": watchdog.detected[ErrorType.ARRIVAL_RATE],
            "program_flow_errors": watchdog.detected[ErrorType.PROGRAM_FLOW],
            "ecu_state": watchdog.ecu_state().value,
            "can_frames": self.can.delivered_count,
            "flexray_cycles": self.flexray.cycle_count,
            "gateway_forwards": self.gateway.forwarded_count,
            "lamp_activations": self.light_node.activations,
            "resets": len(self.ecu.reset_times),
        }
