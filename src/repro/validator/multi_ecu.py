"""Multi-ECU validator: distributed supervision across domain borders.

Extends the architecture validator to the EASIS vision of *Integrated
Safety Systems spanning several ECUs*: two supervised nodes share one
CAN segment and one simulated time base; each runs its own OSEK kernel
image (its own task set, alarms, watchdog, FMF) and publishes
supervision frames from inside its watchdog task; a
:class:`~repro.core.distributed.RemoteSupervisor` on the central node
watches the peer's stream.

Modelling note: both nodes' tasks execute on one simulated CPU (one
:class:`~repro.kernel.Kernel`), which conflates their processor load.
That is irrelevant at the rig's low utilisation, but it means
*starvation*-type node faults must be injected as explicit crashes
(:meth:`MultiEcuValidator.crash_node` — alarms cancelled, tasks
force-terminated, i.e. node power loss / lockup) rather than via CPU
hogs, which would starve both nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.distributed import (
    NodeAlivenessError,
    RemoteSupervisor,
    SupervisionPublisher,
    make_supervision_frame_spec,
)
from ..core.reports import MonitorState
from ..kernel.clock import ms
from ..kernel.scheduler import Kernel
from ..network.can import CanBus, CanController
from ..platform.application import (
    Application,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)
from ..platform.ecu import Ecu
from ..platform.fmf import FmfPolicy

#: FMF configuration for supervised nodes: observe, do not auto-treat
#: (an ECU software reset on a *shared* kernel would reset both nodes).
_OBSERVE = FmfPolicy(ecu_faulty_task_threshold=10**6, max_app_restarts=10**6)


def _node_mapping(node: str, *, period: int, priority: int) -> TaskMapping:
    """A three-runnable application unique to one node."""
    app = Application(f"{node}App")
    swc = SoftwareComponent(f"{node}Swc")
    names = [f"{node}.sense", f"{node}.process", f"{node}.act"]
    for name, wcet in zip(names, (ms(0.5), ms(1), ms(0.5))):
        swc.add(RunnableSpec(name, wcet=wcet))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec(f"{node}Task", priority=priority, period=period))
    mapping.map_sequence(f"{node}Task", names)
    return mapping


class SupervisedNode:
    """One ECU on the shared rig, publishing supervision frames."""

    def __init__(
        self,
        name: str,
        index: int,
        kernel: Kernel,
        can: CanBus,
        *,
        period: int = ms(10),
        priority: int = 5,
    ) -> None:
        self.name = name
        self.index = index
        self.ecu = Ecu(
            name,
            _node_mapping(name, period=period, priority=priority),
            kernel=kernel,
            watchdog_period=ms(10),
            watchdog_name=f"{name}Watchdog",
            fmf_policy=_OBSERVE,
            fmf_auto_treatment=False,
        )
        self.controller: CanController = can.attach(name)
        self.frame_spec = make_supervision_frame_spec(index, name)
        self.publisher = SupervisionPublisher(
            self.ecu.watchdog, self.frame_spec, self.controller.send
        )
        # Publish from the watchdog task: the stream is a true node
        # heartbeat — it stops when the node's scheduling stops.
        self.ecu.binding.post_check_hooks.append(self.publisher.publish)
        self.crashed = False

    def crash(self) -> None:
        """Node lockup / power loss: no task of this node runs again."""
        self.crashed = True
        for alarm in self.ecu.alarms.alarms.values():
            if alarm.armed:
                alarm.cancel()
        for task_name in list(self.ecu.kernel.tasks):
            if task_name.startswith(self.name):
                self.ecu.kernel.force_terminate(task_name)

    def recover(self) -> None:
        """Node reboot: re-arm its schedule."""
        self.crashed = False
        self.ecu.alarms.rearm_after_reset()
        self.ecu.watchdog.reset()


class MultiEcuValidator:
    """Two supervised nodes plus a central supervisor on one CAN segment."""

    def __init__(
        self,
        node_names: Optional[List[str]] = None,
        *,
        supervisor_check_period: int = 3,
        supervisor_min_frames: int = 1,
        node_period: int = ms(10),
    ) -> None:
        self.kernel = Kernel()
        self.can = CanBus("backbone", self.kernel, bitrate_bps=500_000)
        names = node_names or ["chassis", "body"]
        # Shared-CPU caveat: each node's application costs ~2 ms per
        # period; with many nodes pick a period that keeps the summed
        # utilisation feasible, or the lowest-priority node genuinely
        # starves (and its watchdog reports it — correctly).
        self.nodes: Dict[str, SupervisedNode] = {}
        for index, name in enumerate(names):
            node = SupervisedNode(
                name, index, self.kernel, self.can,
                period=node_period,
                priority=5 + index,
            )
            self.nodes[name] = node

        # --- the central supervisor node ---------------------------------
        self.supervisor = RemoteSupervisor(
            check_period=supervisor_check_period,
            min_frames=supervisor_min_frames,
        )
        self.supervisor_controller = self.can.attach("supervisor")
        self.supervisor_controller.on_receive(self.supervisor.on_message)
        for node in self.nodes.values():
            self.supervisor.watch(node.name, node.frame_spec.frame_id)
            self.supervisor_controller.accept(node.frame_spec.frame_id)
        self.node_aliveness_log: List[NodeAlivenessError] = []
        self.supervisor.add_listener(self.node_aliveness_log.append)

        # The supervisor's own check cadence (a timer on the central node).
        self._supervision_period = ms(10)
        self.kernel.queue.schedule(
            self._supervision_period, self._supervision_tick,
            label="remote-supervision", persistent=True,
        )

    def _supervision_tick(self) -> None:
        self.supervisor.cycle(self.kernel.clock.now)
        self.kernel.queue.schedule(
            self.kernel.clock.now + self._supervision_period,
            self._supervision_tick,
            label="remote-supervision",
            persistent=True,
        )

    # ------------------------------------------------------------------
    def run_for(self, duration: int) -> None:
        self.kernel.run_for(duration)

    def crash_node(self, name: str) -> None:
        """Inject a node crash (lockup / power loss)."""
        self.nodes[name].crash()

    def recover_node(self, name: str) -> None:
        """Reboot a crashed node."""
        self.nodes[name].recover()

    # ------------------------------------------------------------------
    def node_state(self, name: str) -> MonitorState:
        """The supervisor's verdict on one node."""
        return self.supervisor.peer_state(name)

    def summary(self) -> Dict[str, object]:
        return {
            "time_ms": self.kernel.clock.now / 1000.0,
            "nodes": {
                name: {
                    "published": node.publisher.published_count,
                    "crashed": node.crashed,
                    "supervisor_verdict": self.node_state(name).value,
                    "frames_seen": self.supervisor.peers[name].frames_received,
                    "node_aliveness_errors": (
                        self.supervisor.peers[name].node_aliveness_errors
                    ),
                }
                for name, node in self.nodes.items()
            },
            "network_state": self.supervisor.network_state().value,
        }
