"""EASIS architecture validator: HIL rig, nodes, ControlDesk, scenarios."""

from .controldesk import Capture, CapturedSeries, Parameter, ParameterStore
from .hil import (
    HilValidator,
    SAFELANE_TASK,
    SAFESPEED_TASK,
    STEERING_TASK,
)
from .multi_ecu import MultiEcuValidator, SupervisedNode
from .nodes import (
    ActuatorNode,
    DriverNode,
    DrivingDynamicsNode,
    EnvironmentNode,
    LightControlNode,
    SignalStore,
    build_validator_catalog,
)
from .scenario import Scenario, ScenarioResult, ScenarioStep

__all__ = [
    "ActuatorNode",
    "Capture",
    "CapturedSeries",
    "DriverNode",
    "DrivingDynamicsNode",
    "EnvironmentNode",
    "HilValidator",
    "LightControlNode",
    "MultiEcuValidator",
    "Parameter",
    "ParameterStore",
    "SAFELANE_TASK",
    "SAFESPEED_TASK",
    "STEERING_TASK",
    "Scenario",
    "ScenarioResult",
    "ScenarioStep",
    "SignalStore",
    "SupervisedNode",
    "build_validator_catalog",
]
