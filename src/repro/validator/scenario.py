"""Scenario runner: timed action scripts against the validator rig.

An evaluation case in the paper is a timed sequence of ControlDesk
manipulations (move a slider at t₁, restore it at t₂) observed through a
capture layout.  :class:`Scenario` encodes exactly that: a named list of
``at(time, action)`` steps executed against a :class:`HilValidator` (or
any object exposing a kernel), returning the capture for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..kernel.scheduler import Kernel
from .controldesk import Capture


@dataclass
class ScenarioStep:
    """One timed action."""

    time: int
    action: Callable[[], None]
    label: str = ""


@dataclass
class ScenarioResult:
    """Outcome of a scenario run."""

    name: str
    duration: int
    capture: Optional[Capture]
    observations: Dict[str, Any] = field(default_factory=dict)


class Scenario:
    """A named, timed action script."""

    def __init__(self, name: str, *, duration: int) -> None:
        if duration <= 0:
            raise ValueError("duration must be > 0")
        self.name = name
        self.duration = duration
        self.steps: List[ScenarioStep] = []
        self._observers: List[Callable[[ScenarioResult], None]] = []

    def at(self, time: int, action: Callable[[], None], label: str = "") -> "Scenario":
        """Schedule an action at an absolute scenario time (chainable)."""
        if not 0 <= time <= self.duration:
            raise ValueError(f"step time {time} outside scenario duration")
        self.steps.append(ScenarioStep(time, action, label))
        return self

    def observe(self, observer: Callable[[ScenarioResult], None]) -> "Scenario":
        """Add a post-run observer that may fill ``result.observations``."""
        self._observers.append(observer)
        return self

    # ------------------------------------------------------------------
    def run(self, rig: Any) -> ScenarioResult:
        """Execute against a rig exposing ``kernel`` (and optionally
        ``capture`` and ``start``)."""
        kernel: Kernel = rig.kernel
        base = kernel.clock.now
        for step in sorted(self.steps, key=lambda s: s.time):
            kernel.queue.schedule(
                base + step.time, step.action, label=f"scenario:{step.label}", persistent=True
            )
        if hasattr(rig, "run"):
            rig.run(self.duration)
        else:
            kernel.run_for(self.duration)
        result = ScenarioResult(
            name=self.name,
            duration=self.duration,
            capture=getattr(rig, "capture", None),
        )
        for observer in self._observers:
            observer(result)
        return result
