"""Node models of the EASIS architecture validator.

"The nodes in the architecture validator include fault-tolerant actuator
and sensor nodes, driving dynamics control, environment simulation,
light control node and a gateway node, which connects different vehicle
domains of TCP/IP, CAN and FlexRay." (§4.1)

Every node runs on the validator's single shared kernel (the common
simulated time base of the rig).  Nodes exchange engineering values only
through the simulated buses — the central ECU never touches the vehicle
model directly, exactly like the real rig.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from ..apps.environment import EnvironmentSimulation
from ..apps.vehicle import Vehicle
from ..kernel.clock import ms, to_s
from ..kernel.scheduler import Kernel
from ..network.can import CanController
from ..network.flexray import FlexRayController
from ..network.frames import FrameCatalog, Message
from ..network.gateway import TcpLink

# ----------------------------------------------------------------------
# frame catalogue of the rig
# ----------------------------------------------------------------------

# CAN identifiers (chassis domain).
ID_VEHICLE_SPEED = 0x100
ID_ACTUATOR_CMD = 0x110
ID_SPEED_COMMAND = 0x120
ID_LANE_POSITION = 0x130
ID_WARNING = 0x140
# FlexRay static slots (x-by-wire domain).
SLOT_HANDWHEEL = 1
SLOT_STEER_CMD = 2
SLOT_ROADWHEEL = 3
# Telematics frame id (TCP domain, routed onto CAN by the gateway).
ID_TELEMATICS_LIMIT = 0x400


def build_validator_catalog() -> FrameCatalog:
    """The signal database of the validator rig."""
    catalog = FrameCatalog()
    catalog.define(
        "VehicleSpeed",
        ID_VEHICLE_SPEED,
        [
            ("speed_kph", 0, 16, 0.01, 0.0),
            ("accel_mps2", 16, 16, 0.001, -30.0),
        ],
    )
    catalog.define(
        "ActuatorCmd",
        ID_ACTUATOR_CMD,
        [
            ("throttle", 0, 8, 1.0 / 250.0, 0.0),
            ("brake", 8, 8, 1.0 / 250.0, 0.0),
        ],
    )
    catalog.define(
        "SpeedCommand",
        ID_SPEED_COMMAND,
        [("limit_kph", 0, 16, 0.01, 0.0)],
    )
    catalog.define(
        "LanePosition",
        ID_LANE_POSITION,
        [
            ("offset_m", 0, 16, 0.001, -30.0),
            ("lat_vel_mps", 16, 16, 0.001, -30.0),
            ("half_width_m", 32, 8, 0.05, 0.0),
        ],
    )
    catalog.define(
        "Warning",
        ID_WARNING,
        [
            ("active", 0, 1, 1.0, 0.0),
            ("side", 1, 2, 1.0, -1.0),
        ],
    )
    catalog.define(
        "Handwheel",
        0x200,
        [("angle_rad", 0, 16, 0.001, -30.0)],
    )
    catalog.define(
        "SteerCmd",
        0x210,
        [("angle_rad", 0, 16, 0.0001, -3.0)],
    )
    catalog.define(
        "RoadWheel",
        0x220,
        [("angle_rad", 0, 16, 0.0001, -3.0)],
    )
    catalog.define(
        "TelematicsLimit",
        ID_TELEMATICS_LIMIT,
        [("limit_kph", 0, 16, 0.01, 0.0)],
    )
    return catalog


class SignalStore:
    """Latest-value store of received frames (one per receiving node)."""

    def __init__(self) -> None:
        self._latest: Dict[str, Dict[str, float]] = {}
        self._timestamps: Dict[str, int] = {}
        self.received_count = 0

    def ingest(self, message: Message) -> None:
        """Receive callback: remember the newest values per frame."""
        self._latest[message.spec.name] = message.values()
        self._timestamps[message.spec.name] = message.timestamp
        self.received_count += 1

    def value(self, frame: str, signal: str, default: float = 0.0) -> float:
        """Latest value of a signal, or ``default`` before first receipt."""
        return self._latest.get(frame, {}).get(signal, default)

    def age(self, frame: str, now: int) -> Optional[int]:
        """Ticks since the frame was last received, or None if never."""
        stamp = self._timestamps.get(frame)
        return None if stamp is None else now - stamp


# ----------------------------------------------------------------------
# node models
# ----------------------------------------------------------------------


class DrivingDynamicsNode:
    """Integrates the vehicle model and publishes its sensed state.

    Combines the rig's driving-dynamics and (fault-tolerant) sensor
    nodes: every ``step_period`` the vehicle advances and the speed,
    lane-position and road-wheel frames are published.
    """

    def __init__(
        self,
        kernel: Kernel,
        vehicle: Vehicle,
        environment: EnvironmentSimulation,
        catalog: FrameCatalog,
        can: CanController,
        flexray: Optional[FlexRayController] = None,
        *,
        step_period: int = ms(5),
    ) -> None:
        self.kernel = kernel
        self.vehicle = vehicle
        self.environment = environment
        self.catalog = catalog
        self.can = can
        self.flexray = flexray
        self.step_period = step_period
        self._previous_offset = 0.0
        self.published_count = 0

    def start(self) -> None:
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.step_period, self._tick, label="dynamics", persistent=True
        )

    def _tick(self) -> None:
        dt = to_s(self.step_period)
        state = self.vehicle.step(dt)
        offset = self.environment.lateral_offset(state)
        lat_vel = (offset - self._previous_offset) / dt
        self._previous_offset = offset

        self.can.send(
            self.catalog.by_name("VehicleSpeed"),
            {"speed_kph": state.speed_kph, "accel_mps2": state.acceleration_mps2},
        )
        self.can.send(
            self.catalog.by_name("LanePosition"),
            {
                "offset_m": offset,
                "lat_vel_mps": lat_vel,
                "half_width_m": self.environment.road.lane_width_m / 2.0,
            },
        )
        if self.flexray is not None:
            self.flexray.stage(
                SLOT_ROADWHEEL,
                self.catalog.by_name("RoadWheel"),
                {"angle_rad": state.steering_rad},
            )
        self.published_count += 1
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.step_period, self._tick, label="dynamics", persistent=True
        )


class ActuatorNode:
    """Fault-tolerant actuator node: applies received commands to the
    vehicle, with a staleness guard (commands older than ``timeout``
    decay to a safe state — throttle released)."""

    def __init__(
        self,
        kernel: Kernel,
        vehicle: Vehicle,
        catalog: FrameCatalog,
        can: CanController,
        flexray: Optional[FlexRayController] = None,
        *,
        timeout: int = ms(100),
        check_period: int = ms(20),
    ) -> None:
        self.kernel = kernel
        self.vehicle = vehicle
        self.catalog = catalog
        self.timeout = timeout
        self.check_period = check_period
        self.store = SignalStore()
        self.safe_state_entries = 0
        can.accept(ID_ACTUATOR_CMD)
        can.on_receive(self._on_can)
        if flexray is not None:
            flexray.on_receive(self._on_flexray)

    def _on_can(self, message: Message) -> None:
        if message.spec.name != "ActuatorCmd":
            return
        self.store.ingest(message)
        values = message.values()
        self.vehicle.commands.throttle = values["throttle"]
        self.vehicle.commands.brake = values["brake"]

    def _on_flexray(self, message: Message) -> None:
        if message.spec.name != "SteerCmd":
            return
        self.store.ingest(message)
        self.vehicle.commands.steering_rad = message.values()["angle_rad"]

    def start(self) -> None:
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.check_period, self._guard, label="actuator", persistent=True
        )

    def _guard(self) -> None:
        """Staleness watchdog on the actuator command stream."""
        age = self.store.age("ActuatorCmd", self.kernel.clock.now)
        if age is not None and age > self.timeout:
            if self.vehicle.commands.throttle > 0.0:
                self.safe_state_entries += 1
            self.vehicle.commands.throttle = 0.0
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.check_period, self._guard, label="actuator", persistent=True
        )


class EnvironmentNode:
    """Publishes the externally commanded speed limit over telematics.

    Every ``period`` the node evaluates the environment at the vehicle's
    position and sends the effective limit over the TCP link (the
    gateway routes it into the chassis CAN as ``SpeedCommand``)."""

    def __init__(
        self,
        kernel: Kernel,
        environment: EnvironmentSimulation,
        vehicle: Vehicle,
        catalog: FrameCatalog,
        tcp: TcpLink,
        *,
        period: int = ms(100),
    ) -> None:
        self.kernel = kernel
        self.environment = environment
        self.vehicle = vehicle
        self.catalog = catalog
        self.tcp = tcp
        self.period = period

    def start(self) -> None:
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.period, self._tick, label="environment", persistent=True
        )

    def _tick(self) -> None:
        limit = self.environment.effective_speed_limit(self.vehicle.state.distance_m)
        self.tcp.send(
            self.catalog.by_name("TelematicsLimit"),
            {"limit_kph": limit},
            source="environment",
        )
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.period, self._tick, label="environment", persistent=True
        )


class DriverNode:
    """Synthetic driver: a handwheel angle profile published on FlexRay."""

    def __init__(
        self,
        kernel: Kernel,
        catalog: FrameCatalog,
        flexray: FlexRayController,
        *,
        profile: Optional[Callable[[float], float]] = None,
        period: int = ms(10),
    ) -> None:
        self.kernel = kernel
        self.catalog = catalog
        self.flexray = flexray
        self.period = period
        self.profile = profile or (lambda t: 0.15 * math.sin(0.5 * t))

    def start(self) -> None:
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.period, self._tick, label="driver", persistent=True
        )

    def _tick(self) -> None:
        angle = self.profile(to_s(self.kernel.clock.now))
        self.flexray.stage(
            SLOT_HANDWHEEL, self.catalog.by_name("Handwheel"), {"angle_rad": angle}
        )
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.period, self._tick, label="driver", persistent=True
        )


class LightControlNode:
    """Receives SafeLane warnings and drives the warning lamp."""

    def __init__(self, can: CanController) -> None:
        self.lamp_on = False
        self.activations = 0
        can.accept(ID_WARNING)
        can.on_receive(self._on_message)

    def _on_message(self, message: Message) -> None:
        if message.spec.name != "Warning":
            return
        active = message.values()["active"] >= 0.5
        if active and not self.lamp_on:
            self.activations += 1
        self.lamp_on = active
