"""ControlDesk-style experiment environment.

"The experiment environment ControlDesk from dSPACE provides the
possibility to manipulate the data assigned to the timing parameter of
runnables [and] the condition that determine the invalid execution
branches in the runtime.  Therefore, it is used to trigger the error
injection during the execution of the applications and visualize the
results as well." (§4.5)

This module reproduces those two capabilities against the simulation:

* :class:`ParameterStore` — named runtime parameters with sliders
  (set-at-time), bound to arbitrary getter/setter pairs,
* :class:`Capture` — periodic sampling of named probes into time series
  (the paper's plots sample with "a scalar of 10 ms"), rendered by
  :mod:`repro.analysis.plots`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..kernel.clock import ms
from ..kernel.scheduler import Kernel

Getter = Callable[[], float]
Setter = Callable[[float], None]


@dataclass
class Parameter:
    """One runtime-tunable parameter (a ControlDesk instrument)."""

    name: str
    getter: Getter
    setter: Setter
    description: str = ""

    @property
    def value(self) -> float:
        return self.getter()

    @value.setter
    def value(self, new_value: float) -> None:
        self.setter(new_value)


class ParameterStore:
    """Registry of runtime parameters with scheduled slider moves."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._parameters: Dict[str, Parameter] = {}
        self.change_log: List[tuple] = []

    # ------------------------------------------------------------------
    def register(
        self, name: str, getter: Getter, setter: Setter, description: str = ""
    ) -> Parameter:
        """Expose a parameter."""
        if name in self._parameters:
            raise ValueError(f"duplicate parameter {name!r}")
        parameter = Parameter(name, getter, setter, description)
        self._parameters[name] = parameter
        return parameter

    def register_attribute(self, name: str, obj: Any, attribute: str, description: str = "") -> Parameter:
        """Expose ``obj.attribute`` as a parameter."""
        return self.register(
            name,
            getter=lambda: getattr(obj, attribute),
            setter=lambda v: setattr(obj, attribute, v),
            description=description,
        )

    def get(self, name: str) -> Parameter:
        parameter = self._parameters.get(name)
        if parameter is None:
            raise KeyError(f"unknown parameter {name!r}")
        return parameter

    # ------------------------------------------------------------------
    def set_now(self, name: str, value: float) -> None:
        """Move a slider immediately."""
        self.get(name).value = value
        self.change_log.append((self.kernel.clock.now, name, value))

    def set_at(self, when: int, name: str, value: float) -> None:
        """Schedule a slider move at an absolute simulation time."""
        self.get(name)  # fail fast on unknown names
        self.kernel.queue.schedule(
            when, lambda: self.set_now(name, value), label=f"slider:{name}", persistent=True
        )

    def parameters(self) -> List[Parameter]:
        return list(self._parameters.values())


@dataclass
class CapturedSeries:
    """One captured probe."""

    name: str
    times: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def at(self, time: int) -> Optional[float]:
        """Last captured value at or before ``time``."""
        result: Optional[float] = None
        for t, v in zip(self.times, self.values):
            if t > time:
                break
            result = v
        return result

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def final(self) -> float:
        return self.values[-1] if self.values else 0.0


class Capture:
    """Periodic sampling of named probes (a ControlDesk capture layout)."""

    def __init__(self, kernel: Kernel, *, sample_period: int = ms(10)) -> None:
        if sample_period <= 0:
            raise ValueError("sample_period must be > 0")
        self.kernel = kernel
        self.sample_period = sample_period
        self._probes: Dict[str, Getter] = {}
        self.series: Dict[str, CapturedSeries] = {}
        self._running = False

    # ------------------------------------------------------------------
    def add_probe(self, name: str, getter: Getter) -> None:
        """Add a probe sampled at every capture tick."""
        if name in self._probes:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes[name] = getter
        self.series[name] = CapturedSeries(name)

    def add_attribute_probe(self, name: str, obj: Any, attribute: str) -> None:
        """Probe ``obj.attribute``."""
        self.add_probe(name, lambda: getattr(obj, attribute))

    def start(self) -> None:
        """Begin sampling at the configured period."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.sample_period, self._sample,
            label="capture", persistent=True
        )

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.kernel.clock.now
        for name, getter in self._probes.items():
            series = self.series[name]
            series.times.append(now)
            series.values.append(float(getter()))
        self._schedule_next()

    # ------------------------------------------------------------------
    def get(self, name: str) -> CapturedSeries:
        series = self.series.get(name)
        if series is None:
            raise KeyError(f"unknown probe {name!r}")
        return series

    def as_dict(self) -> Dict[str, List[float]]:
        """{probe: values} for analysis/plotting."""
        return {name: list(s.values) for name, s in self.series.items()}
