"""WatchdogClient — the glue-code SDK for the live supervision service.

The paper's glue code is a one-liner in each runnable that reports an
aliveness indication; this client keeps that property for real
processes.  ``heartbeat()`` and ``task_start()`` append to an in-memory
buffer and return immediately; the buffer flushes as batched HEARTBEAT/
FLOW frames once ``batch_size`` indications accumulate (or explicitly
via :meth:`flush`).  The hot path therefore costs a deque append — no
syscall, no serialization.

Failure discipline (a supervised process must never crash *because of*
its supervisor):

* the indication path never raises — when the daemon is unreachable,
  indications land in a bounded offline buffer (oldest dropped and
  counted once full) and are replayed after reconnecting,
* reconnects use exponential backoff with jitter, bounded by
  ``max_retries`` per flush attempt,
* after a reconnect the client re-sends HELLO and re-REGISTERs every
  hypothesis it has registered; the server rebinds an identical
  hypothesis onto its surviving watchdog, so supervision state is
  preserved across client connection loss.

Server pushes (DETECTION and STATE frames) are read by :meth:`poll` —
call it from the application's own loop; the client is deliberately
single-threaded so glue code stays deterministic and testable.
"""

from __future__ import annotations

import collections
import random
import socket
import time as _time
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union

from ..core.config_io import hypothesis_to_dict
from ..core.hypothesis import FaultHypothesis
from .protocol import (
    Frame,
    FrameDecoder,
    ProtocolError,
    T_ACK,
    T_BYE,
    T_DETECTION,
    T_FLOW,
    T_HEARTBEAT,
    T_HELLO,
    T_REGISTER,
    T_STATE,
    encode_frame,
)

__all__ = ["ClientError", "RegistrationRejected", "WatchdogClient"]

Address = Union[str, Tuple[str, int]]

#: Indications per HEARTBEAT/FLOW frame when flushing a large buffer.
_MAX_BATCH_PER_FRAME = 512


class ClientError(Exception):
    """The client could not complete a request."""


class RegistrationRejected(ClientError):
    """The server refused a REGISTER (lint errors, strict mode, name
    conflicts); ``reasons`` carries the server's diagnostics."""

    def __init__(self, reasons: List[str]) -> None:
        super().__init__("; ".join(reasons) or "registration rejected")
        self.reasons = list(reasons)


class WatchdogClient:
    """Synchronous SDK for one supervised process.

    ``address`` is ``(host, port)`` for TCP or a filesystem path string
    for a UNIX socket.  ``failover`` lists further addresses (typically
    the warm standby's) tried in order whenever the current one refuses;
    the client sticks with whichever address last worked, and the
    ordinary reconnect path — replay HELLO, re-REGISTER everything —
    runs identically after a failover, so a promoted standby receives
    the same rebind a restarted primary would.
    """

    def __init__(
        self,
        address: Address,
        *,
        failover: Tuple[Address, ...] = (),
        client_name: str = "glue",
        watch: bool = False,
        batch_size: int = 64,
        buffer_limit: int = 4096,
        reconnect: bool = True,
        backoff_initial: float = 0.05,
        backoff_max: float = 2.0,
        backoff_jitter: float = 0.25,
        max_retries: int = 8,
        timeout: float = 5.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = _time.sleep,
        on_detection: Optional[Callable[[Dict[str, Any]], None]] = None,
        on_state: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if batch_size < 1 or buffer_limit < 1:
            raise ValueError("batch_size and buffer_limit must be >= 1")
        self.addresses: List[Address] = [address, *failover]
        self._addr_index = 0
        self.client_name = client_name
        #: Subscribe to every DETECTION the daemon raises (monitoring
        #: clients) instead of only those about own registrations.
        self.watch = watch
        self.batch_size = batch_size
        self.buffer_limit = buffer_limit
        self.reconnect_enabled = reconnect
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.backoff_jitter = backoff_jitter
        self.max_retries = max_retries
        self.timeout = timeout
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self.on_detection = on_detection
        self.on_state = on_state

        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._buffer: Deque[Tuple[Any, ...]] = collections.deque()
        self._registrations: Dict[str, Dict[str, Any]] = {}
        self.closed = False
        #: Counters a supervised process can export for its own health.
        self.dropped = 0
        self.sent_indications = 0
        self.reconnects = 0
        self.detections: List[Dict[str, Any]] = []
        self.states: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Open the transport and shake hands (HELLO → ACK)."""
        if self.closed:
            raise ClientError("client is closed")
        if self._sock is not None:
            return
        sock = self._open_socket()
        self._sock = sock
        self._decoder = FrameDecoder()
        try:
            ack = self._request(T_HELLO, client=self.client_name,
                                watch=self.watch)
            if not ack.get("ok"):
                raise ClientError(
                    f"HELLO rejected: {ack.get('error', 'unknown error')}"
                )
            for name, spec in self._registrations.items():
                self._register_on_wire(name, spec)
        except Exception:
            self._drop_connection()
            raise

    @property
    def address(self) -> Address:
        """The address currently (or last successfully) in use."""
        return self.addresses[self._addr_index]

    def _open_socket(self) -> socket.socket:
        """Connect to the first reachable address, starting from the one
        that last worked (sticky) and rotating through the failover
        list; raises the final error when every address refuses."""
        last_exc: Optional[Exception] = None
        for offset in range(len(self.addresses)):
            index = (self._addr_index + offset) % len(self.addresses)
            try:
                sock = self._connect_address(self.addresses[index])
            except OSError as exc:
                last_exc = exc
                continue
            self._addr_index = index
            return sock
        assert last_exc is not None
        raise last_exc

    def _connect_address(self, address: Address) -> socket.socket:
        if isinstance(address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(address)
        else:
            host, port = address
            sock = socket.create_connection((host, port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _reconnect(self) -> bool:
        """Bounded exponential backoff with jitter; True on success."""
        if self.closed or not self.reconnect_enabled:
            return False
        for attempt in range(self.max_retries):
            # Jitter before clamping: applying it after would let the
            # sleep exceed backoff_max by up to the jitter factor, and
            # backoff_max is a promise about the worst-case gap between
            # reconnect attempts (the detection-latency budget).
            delay = self.backoff_initial * (2 ** attempt)
            delay *= 1.0 + self.backoff_jitter * self._rng.random()
            delay = min(self.backoff_max, delay)
            self._sleep(delay)
            try:
                self.connect()
            except (OSError, ClientError):
                self._drop_connection()
                continue
            self.reconnects += 1
            return True
        return False

    def _ensure_connection(self) -> bool:
        if self._sock is not None:
            return True
        if self.closed:
            return False
        try:
            self.connect()
            return True
        except (OSError, ClientError):
            self._drop_connection()
        return self._reconnect()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        hypothesis: Union[FaultHypothesis, Dict[str, Any]],
        *,
        app_of_task: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """Submit a fault hypothesis; returns the server's ACK payload
        (``shard`` assignment and ``lint`` diagnostics).

        Raises :class:`RegistrationRejected` when the server (or its
        ``--strict`` linter) refuses the hypothesis.
        """
        if isinstance(hypothesis, FaultHypothesis):
            hypothesis = hypothesis_to_dict(hypothesis)
        spec: Dict[str, Any] = {"hypothesis": hypothesis}
        if app_of_task is not None:
            spec["app_of_task"] = dict(app_of_task)
        if not self._ensure_connection():
            raise ClientError(f"cannot reach the supervision daemon at "
                              f"{self.address!r}")
        ack = self._register_on_wire(name, spec)
        self._registrations[name] = spec
        return ack

    def _register_on_wire(self, name: str, spec: Dict[str, Any]) -> Dict[str, Any]:
        ack = self._request(T_REGISTER, name=name, **spec)
        if not ack.get("ok"):
            reasons = ack.get("lint") or []
            error = ack.get("error")
            if error and error not in reasons:
                reasons = [error] + list(reasons)
            raise RegistrationRejected(reasons)
        return ack.data

    # ------------------------------------------------------------------
    # the glue-code hot path
    # ------------------------------------------------------------------
    def heartbeat(
        self, runnable: str, time: Optional[int] = None,
        task: Optional[str] = None,
    ) -> None:
        """Report one aliveness indication (buffered; never raises)."""
        self._push_item(("hb", runnable, time, task))

    def task_start(self, task: str, time: Optional[int] = None) -> None:
        """Report one task-activation start (buffered; never raises)."""
        self._push_item(("flow", task, time))

    def _push_item(self, item: Tuple[Any, ...]) -> None:
        if len(self._buffer) >= self.buffer_limit:
            self._buffer.popleft()
            self.dropped += 1
        self._buffer.append(item)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> bool:
        """Send everything buffered; False when the daemon stayed
        unreachable (indications remain buffered, bounded)."""
        if not self._buffer:
            return True
        if not self._registrations:
            # Nothing to attribute the indications to yet; keep them
            # buffered until register() names a registration.
            return False
        if not self._ensure_connection():
            return False
        while self._buffer:
            run = self._pop_run()
            frame = self._encode_run(run)
            try:
                self._sock.sendall(frame)
            except OSError:
                # Put the run back in front — order preserved — and
                # retry over a fresh connection.
                self._buffer.extendleft(reversed(run))
                self._drop_connection()
                if not self._reconnect():
                    return False
                continue
            self.sent_indications += len(run)
        return True

    def sync(self) -> bool:
        """Flush, then round-trip a HELLO so every indication sent so
        far is guaranteed to have been dispatched by the daemon (frames
        are handled in order per connection).  A write barrier for
        deterministic tests and graceful handover; False when the
        daemon stayed unreachable."""
        if not self.flush():
            return False
        if self._sock is None:
            return False
        try:
            ack = self._request(T_HELLO, client=self.client_name,
                                watch=self.watch)
        except ClientError:
            return False
        return bool(ack.get("ok"))

    def _pop_run(self) -> List[Tuple[Any, ...]]:
        """Pop the longest prefix of same-kind indications (bounded per
        frame) so interleaved heartbeat/flow order survives batching."""
        kind = self._buffer[0][0]
        run: List[Tuple[Any, ...]] = []
        while (self._buffer and self._buffer[0][0] == kind
               and len(run) < _MAX_BATCH_PER_FRAME):
            run.append(self._buffer.popleft())
        return run

    def _encode_run(self, run: List[Tuple[Any, ...]]) -> bytes:
        # A client talks about one registration per connection batch;
        # multi-registration clients interleave frames, which the
        # server applies in arrival order anyway.
        if run[0][0] == "hb":
            batch = [[r, t, task] for _, r, t, task in run]
            return encode_frame(
                T_HEARTBEAT, name=self._primary_name(), batch=batch
            )
        batch = [[task, t] for _, task, t in run]
        return encode_frame(T_FLOW, name=self._primary_name(), batch=batch)

    def _primary_name(self) -> str:
        if not self._registrations:
            raise ClientError("no registration — call register() first")
        return next(iter(self._registrations))

    # ------------------------------------------------------------------
    # server pushes
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Drain pending DETECTION/STATE pushes without blocking;
        returns the number of frames dispatched."""
        if self._sock is None:
            return 0
        dispatched = 0
        self._sock.setblocking(False)
        try:
            while True:
                try:
                    chunk = self._sock.recv(65536)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    self._drop_connection()
                    break
                if not chunk:
                    self._drop_connection()
                    break
                dispatched += self._dispatch_chunk(chunk)
        finally:
            if self._sock is not None:
                self._sock.settimeout(self.timeout)
        return dispatched

    def _dispatch_chunk(self, chunk: bytes) -> int:
        dispatched = 0
        for item in self._decoder.feed(chunk):
            if isinstance(item, ProtocolError):
                continue
            self._dispatch_push(item)
            dispatched += 1
        return dispatched

    def _dispatch_push(self, frame: Frame) -> None:
        if frame.type == T_DETECTION:
            self.detections.append(frame.data)
            if self.on_detection is not None:
                self.on_detection(frame.data)
        elif frame.type == T_STATE:
            self.states.append(frame.data)
            if self.on_state is not None:
                self.on_state(frame.data)
        # Unsolicited ACKs (e.g. to a malformed frame we sent) are kept
        # out of the push lists but not fatal.

    # ------------------------------------------------------------------
    # request/response plumbing
    # ------------------------------------------------------------------
    def _request(self, type: str, **data: Any) -> Frame:
        """Send one frame and block for its ACK, dispatching any pushes
        that arrive in between."""
        if self._sock is None:
            raise ClientError("not connected")
        self._sock.settimeout(self.timeout)
        try:
            self._sock.sendall(encode_frame(type, **data))
            deadline = _time.monotonic() + self.timeout
            while True:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    raise ClientError(f"timed out waiting for {type} ACK")
                self._sock.settimeout(remaining)
                chunk = self._sock.recv(65536)
                if not chunk:
                    raise ClientError("connection closed mid-request")
                ack: Optional[Frame] = None
                for item in self._decoder.feed(chunk):
                    if isinstance(item, ProtocolError):
                        raise ClientError(f"undecodable server frame: {item}")
                    if item.type == T_ACK and ack is None:
                        ack = item
                    else:
                        # Pushes decoded from the same chunk as the ACK
                        # must not be lost.
                        self._dispatch_push(item)
                if ack is not None:
                    return ack
        except (OSError, socket.timeout) as exc:
            self._drop_connection()
            raise ClientError(f"{type} request failed: {exc}") from None

    # ------------------------------------------------------------------
    def close(self, *, say_bye: bool = True) -> None:
        """Flush, say goodbye, close.  After ``close()`` the client is
        unusable; a BYE tells the daemon the silence to come is
        deliberate (monitoring deactivates instead of detecting)."""
        if self.closed:
            return
        self.flush()
        if say_bye and self._sock is not None:
            try:
                self._request(T_BYE)
            except ClientError:
                pass
        self.closed = True
        self._drop_connection()

    def __enter__(self) -> "WatchdogClient":
        self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
