"""Synchronous supervision core of the live service.

The asyncio daemon (:mod:`repro.service.server`) is deliberately a thin
transport: every supervision decision lives here, in plain synchronous
code, so the differential test can drive the exact same objects without
an event loop and pin the service path bit-for-bit to the in-process
path.

A :class:`SupervisorShard` owns the registrations assigned to it.  Each
registration wraps one wheel-strategy
:class:`~repro.core.watchdog.SoftwareWatchdog` built from the
client-submitted fault hypothesis — the same construction an embedded
integrator would use in-process, so detections, thresholds and
task-state rollups are byte-identical to local supervision.  REGISTER
runs the hypothesis through wdlint (:func:`repro.lint.lint_hypothesis`);
error-severity diagnostics always reject, ``strict`` mode also rejects
warnings (the ``--strict`` serve flag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.config_io import hypothesis_from_dict
from ..core.hypothesis import FaultHypothesis, HypothesisError
from ..core.reports import RunnableError, TaskFaultEvent
from ..core.watchdog import SoftwareWatchdog

__all__ = [
    "Registration",
    "RegistrationError",
    "SupervisorShard",
    "build_watchdog",
]

#: Detection callback: ``(registration name, error)``.
DetectionListener = Callable[[str, RunnableError], None]
TaskFaultListener = Callable[[str, TaskFaultEvent], None]


class RegistrationError(ValueError):
    """A REGISTER frame was rejected; carries the human-readable reasons."""

    def __init__(self, reasons: List[str]) -> None:
        super().__init__("; ".join(reasons))
        self.reasons = list(reasons)


def build_watchdog(
    name: str,
    hypothesis: FaultHypothesis,
    *,
    app_of_task: Optional[Dict[str, str]] = None,
    telemetry=None,
    event_sink=None,
) -> SoftwareWatchdog:
    """The one watchdog construction both supervision paths share.

    The differential test builds its in-process reference watchdog
    through this same function, so a knob added here (strategy, eager
    mode, ...) can never silently diverge the two paths.  ``lint="off"``
    because the service lints explicitly on REGISTER — it needs the
    structured report for the ACK, not a warning on the server's stderr.
    """
    return SoftwareWatchdog(
        hypothesis,
        name=name,
        app_of_task=app_of_task,
        check_strategy="wheel",
        lint="off",
        telemetry=telemetry,
        event_sink=event_sink,
    )


@dataclass
class Registration:
    """One registered client hypothesis and its supervision state."""

    name: str
    shard_index: int
    hypothesis: FaultHypothesis
    hypothesis_dict: Dict[str, Any]
    watchdog: SoftwareWatchdog
    #: The runnable→task application mapping submitted with REGISTER
    #: (kept so the registration can be journaled and rebuilt verbatim).
    app_of_task: Optional[Dict[str, str]] = None
    lint_diagnostics: List[str] = field(default_factory=list)
    #: False after a graceful BYE (monitoring deactivated, state kept).
    active: bool = True
    #: True while a client connection is bound to this registration.
    connected: bool = False
    indications: int = 0
    task_starts: int = 0
    detections: int = 0

    def deactivate(self) -> None:
        """Graceful departure: switch every runnable's Activation Status
        off so the silence that follows is not misread as a crash."""
        self.active = False
        for runnable in self.hypothesis.runnables:
            self.watchdog.set_activation_status(runnable, False)

    def reactivate(self) -> None:
        """Rebind after BYE or reconnect: restore the hypothesis's
        configured Activation Status per runnable."""
        self.active = True
        for runnable, hyp in self.hypothesis.runnables.items():
            self.watchdog.set_activation_status(runnable, hyp.active)


class SupervisorShard:
    """The registrations of one shard plus their check-cycle driver.

    ``tick()`` iterates registrations in registration order — the
    deterministic order the differential test replays.
    """

    def __init__(
        self,
        index: int = 0,
        *,
        strict: bool = False,
        telemetry=None,
        event_sink=None,
    ) -> None:
        self.index = index
        self.strict = strict
        self.telemetry = telemetry
        self.event_sink = event_sink
        self.registrations: Dict[str, Registration] = {}
        self.processed = 0
        self.tick_count = 0
        self._detection_listeners: List[DetectionListener] = []
        self._task_fault_listeners: List[TaskFaultListener] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        hypothesis_dict: Dict[str, Any],
        *,
        app_of_task: Optional[Dict[str, str]] = None,
    ) -> Registration:
        """Admit one hypothesis; lint it; reject what lint rejects.

        Re-registering an existing name with a byte-identical hypothesis
        is a *rebind* (the reconnect path): the existing watchdog and its
        counters survive, monitoring is reactivated.  A different
        hypothesis under a taken name is rejected.
        """
        existing = self.registrations.get(name)
        if existing is not None:
            if existing.hypothesis_dict == hypothesis_dict:
                existing.reactivate()
                return existing
            raise RegistrationError(
                [f"registration name {name!r} is already in use "
                 "with a different hypothesis"]
            )
        try:
            hypothesis = hypothesis_from_dict(dict(hypothesis_dict))
        except (HypothesisError, KeyError, TypeError, ValueError) as exc:
            raise RegistrationError([f"invalid hypothesis: {exc}"]) from None
        diagnostics = self._lint(name, hypothesis)
        registration = Registration(
            name=name,
            shard_index=self.index,
            hypothesis=hypothesis,
            hypothesis_dict=dict(hypothesis_dict),
            watchdog=build_watchdog(
                name,
                hypothesis,
                app_of_task=app_of_task,
                telemetry=self.telemetry,
                event_sink=self.event_sink,
            ),
            app_of_task=dict(app_of_task) if app_of_task is not None else None,
            lint_diagnostics=diagnostics,
        )
        registration.watchdog.add_fault_listener(
            lambda error, _name=name: self._on_detection(_name, error)
        )
        registration.watchdog.add_task_fault_listener(
            lambda event, _name=name: self._on_task_fault(_name, event)
        )
        self.registrations[name] = registration
        return registration

    def _lint(self, name: str, hypothesis: FaultHypothesis) -> List[str]:
        from ..lint import Severity, lint_hypothesis

        report = lint_hypothesis(hypothesis, source=name)
        rendered = [str(d) for d in report.diagnostics]
        errors = [
            str(d) for d in report.diagnostics if d.severity is Severity.ERROR
        ]
        if errors:
            raise RegistrationError(errors)
        if self.strict and rendered:
            raise RegistrationError(
                ["strict mode rejects lint warnings"] + rendered
            )
        return rendered

    def deregister(self, name: str) -> None:
        """Graceful BYE: deactivate, keep counters for a later rebind."""
        self.registrations[name].deactivate()

    # ------------------------------------------------------------------
    # the supervised interfaces
    # ------------------------------------------------------------------
    def heartbeat(
        self,
        registration: str,
        runnable: str,
        time: int,
        task: Optional[str] = None,
    ) -> None:
        entry = self.registrations.get(registration)
        if entry is None:
            return
        entry.indications += 1
        self.processed += 1
        entry.watchdog.heartbeat_indication(runnable, time, task)

    def task_start(self, registration: str, task: str) -> None:
        entry = self.registrations.get(registration)
        if entry is None:
            return
        entry.task_starts += 1
        self.processed += 1
        entry.watchdog.notify_task_start(task)

    def tick(self, time: int) -> List[Tuple[str, RunnableError]]:
        """One check cycle over every registration of this shard."""
        self.tick_count += 1
        errors: List[Tuple[str, RunnableError]] = []
        for entry in self.registrations.values():
            for error in entry.watchdog.check_cycle(time):
                errors.append((entry.name, error))
        return errors

    # ------------------------------------------------------------------
    # persistence (the restartable daemon's snapshot/restore pair)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-compatible shard state: every registration's
        hypothesis, bookkeeping counters, and its watchdog's complete
        monitoring state (:meth:`SoftwareWatchdog.snapshot_state`)."""
        return {
            "index": self.index,
            "processed": self.processed,
            "tick_count": self.tick_count,
            "registrations": [
                {
                    "name": entry.name,
                    "hypothesis": dict(entry.hypothesis_dict),
                    "app_of_task": (
                        dict(entry.app_of_task)
                        if entry.app_of_task is not None else None
                    ),
                    "active": entry.active,
                    "indications": entry.indications,
                    "task_starts": entry.task_starts,
                    "detections": entry.detections,
                    "watchdog": entry.watchdog.snapshot_state(),
                }
                for entry in self.registrations.values()
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild every registration from a :meth:`snapshot` capture.

        Each registration is re-admitted through :meth:`register` (so
        listeners are wired exactly like a live REGISTER would) and then
        its watchdog state is overwritten with the captured one —
        including counters mid-window, declared-faulty tasks and the
        wheel deadlines — so supervision resumes where the dead daemon
        left off.  The shard must be empty.
        """
        if self.registrations:
            raise ValueError("restore() needs an empty shard")
        self.processed = int(state["processed"])
        self.tick_count = int(state["tick_count"])
        for record in state["registrations"]:
            entry = self.register(
                record["name"],
                record["hypothesis"],
                app_of_task=record["app_of_task"],
            )
            entry.watchdog.restore_state(record["watchdog"])
            # The Activation Status flags came back with the counter
            # block; only the bookkeeping flag needs setting (calling
            # deactivate() here would wrongly re-zero the counters).
            entry.active = bool(record["active"])
            entry.connected = False
            entry.indications = int(record["indications"])
            entry.task_starts = int(record["task_starts"])
            entry.detections = int(record["detections"])

    # ------------------------------------------------------------------
    # rollups and listeners
    # ------------------------------------------------------------------
    def add_detection_listener(self, listener: DetectionListener) -> None:
        self._detection_listeners.append(listener)

    def add_task_fault_listener(self, listener: TaskFaultListener) -> None:
        self._task_fault_listeners.append(listener)

    def _on_detection(self, registration: str, error: RunnableError) -> None:
        self.registrations[registration].detections += 1
        for listener in self._detection_listeners:
            listener(registration, error)

    def _on_task_fault(self, registration: str, event: TaskFaultEvent) -> None:
        for listener in self._task_fault_listeners:
            listener(registration, event)

    def task_states(self) -> Dict[str, Dict[str, Any]]:
        """Per-registration task-state map (the shard's rollup input)."""
        return {
            name: {
                task: entry.watchdog.task_state(task)
                for task in entry.hypothesis.tasks()
            }
            for name, entry in self.registrations.items()
        }
