"""Wire protocol of the live supervision service.

Framing is deliberately boring: every frame is a 4-byte big-endian
payload length followed by one UTF-8 JSON object.  The object always
carries ``v`` (the protocol schema version) and ``type``; everything
else is frame-specific payload.  Length-delimited JSON keeps the
protocol zero-dependency, debuggable with ``socat``, and — crucially
for a dependability service — *resynchronizable*: a malformed payload
is still cleanly delimited by its length header, so the decoder can
reject the one frame and keep the connection alive.  Only a corrupt
length header (raising :class:`FatalProtocolError`) forces a
disconnect, because framing itself can no longer be trusted.

Client → server frames
======================

========== ==========================================================
``HELLO``     handshake; carries ``client`` (a display name)
``REGISTER``  a fault hypothesis (``hypothesis`` in the
              :func:`repro.core.config_io.hypothesis_to_dict` format)
              under a unique ``name``; optional ``app_of_task``
``HEARTBEAT`` a batch of aliveness indications:
              ``[[runnable, time, task], ...]`` (``time`` may be
              ``null`` — the server stamps its own clock)
``FLOW``      a batch of task-activation starts: ``[[task, time], ...]``
``BYE``       graceful goodbye; the registration is deactivated
              instead of being treated as crashed
========== ==========================================================

Server → client frames
======================

============= =======================================================
``ACK``        response to HELLO/REGISTER/BYE and to malformed frames
               (``ok`` plus ``re`` naming the acked type; failures
               carry ``error``, REGISTER acks carry ``shard`` and the
               ``lint`` diagnostics)
``DETECTION``  one watchdog detection pushed to the owning client
``STATE``      a state-machine transition (``scope`` of ``task``,
               ``ecu`` or ``fleet``)
============= =======================================================

HEARTBEAT and FLOW are fire-and-forget (no ACK): heartbeats are the
hot path and the watchdog's own counters are the integrity check — a
lost indication is exactly a missed heartbeat, which is the event the
service exists to detect.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Union

__all__ = [
    "FatalProtocolError",
    "Frame",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REQUEST_TYPES",
    "SERVER_TYPES",
    "T_ACK",
    "T_BYE",
    "T_DETECTION",
    "T_FLOW",
    "T_HEARTBEAT",
    "T_HELLO",
    "T_REGISTER",
    "T_STATE",
    "encode_frame",
    "encode_payload",
]

#: Version stamped into every frame; bump on incompatible changes.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload; a length header above this is
#: treated as framing corruption (:class:`FatalProtocolError`).
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct("!I")
HEADER_BYTES = _HEADER.size

T_HELLO = "HELLO"
T_REGISTER = "REGISTER"
T_HEARTBEAT = "HEARTBEAT"
T_FLOW = "FLOW"
T_BYE = "BYE"
T_ACK = "ACK"
T_DETECTION = "DETECTION"
T_STATE = "STATE"

REQUEST_TYPES = (T_HELLO, T_REGISTER, T_HEARTBEAT, T_FLOW, T_BYE)
SERVER_TYPES = (T_ACK, T_DETECTION, T_STATE)
_KNOWN_TYPES = frozenset(REQUEST_TYPES + SERVER_TYPES)


class ProtocolError(Exception):
    """One frame was malformed; the connection remains usable."""


class FatalProtocolError(ProtocolError):
    """The byte stream itself is corrupt; the connection must close."""


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame."""

    type: str
    data: Dict[str, Any] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


def encode_payload(type: str, **data: Any) -> Dict[str, Any]:
    """The JSON object for one frame (before framing)."""
    payload = dict(data)
    payload["v"] = PROTOCOL_VERSION
    payload["type"] = type
    return payload


def encode_frame(type: str, **data: Any) -> bytes:
    """Serialize one frame: length header plus JSON payload."""
    body = json.dumps(
        encode_payload(type, **data), separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> Frame:
    """Parse one delimited payload into a :class:`Frame`.

    Raises :class:`ProtocolError` (recoverable — the stream is still
    framed correctly) for anything wrong *inside* the payload.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.pop("v", None)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version: {version!r}")
    frame_type = payload.pop("type", None)
    if frame_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown frame type: {frame_type!r}")
    return Frame(type=frame_type, data=payload, version=version)


class FrameDecoder:
    """Incremental decoder: feed bytes, iterate frames.

    :meth:`feed` returns a list whose entries are either :class:`Frame`
    objects or :class:`ProtocolError` instances — a malformed payload is
    surfaced *in order* so the server can ACK the failure and keep
    decoding subsequent frames from the same connection.
    """

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes
        #: Totals kept by the decoder (cheap ints; exported by the
        #: server's telemetry).
        self.frames_decoded = 0
        self.frames_rejected = 0

    def feed(self, chunk: bytes) -> List[Union[Frame, ProtocolError]]:
        """Consume ``chunk``; return every complete frame it finished."""
        self._buffer.extend(chunk)
        return list(self._drain())

    def _drain(self) -> Iterator[Union[Frame, ProtocolError]]:
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self._max:
                raise FatalProtocolError(
                    f"frame length {length} exceeds the {self._max}-byte "
                    "limit; stream framing is corrupt"
                )
            end = HEADER_BYTES + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[HEADER_BYTES:end])
            del self._buffer[:end]
            try:
                frame = _decode_body(body)
            except ProtocolError as exc:
                self.frames_rejected += 1
                yield exc
            else:
                self.frames_decoded += 1
                yield frame

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet framing a complete frame."""
        return len(self._buffer)
