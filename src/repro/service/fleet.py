"""Fleet rollup: shard task states into the existing state machine.

The local supervision hierarchy is runnable → task → application → ECU
(the TSI unit); distributed supervision added ECU → vehicle network
(:class:`~repro.core.distributed.RemoteSupervisor`).  The live service
adds one more level with the same semantics: registration → shard →
fleet.  Each registration's watchdog already derives its own ECU state;
the :class:`Fleet` mirrors :meth:`RemoteSupervisor.network_state` and
rolls the worst registration state up into a fleet verdict, emitting
the existing :class:`~repro.core.reports.EcuStateChange` record on
every transition so downstream consumers (the FMF, the DETECTION push
channel, telemetry) see the service exactly like a very large ECU.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.reports import EcuStateChange, MonitorState, RunnableError
from .supervisor import Registration, SupervisorShard

__all__ = ["Fleet"]

_STATE_RANK = {
    MonitorState.OK: 0,
    MonitorState.SUSPICIOUS: 1,
    MonitorState.FAULTY: 2,
}


def _worst(states) -> MonitorState:
    worst = MonitorState.OK
    for state in states:
        if _STATE_RANK[state] > _STATE_RANK[worst]:
            worst = state
    return worst


class Fleet:
    """N supervisor shards plus the fleet-level state rollup."""

    def __init__(
        self,
        shards: int = 1,
        *,
        strict: bool = False,
        telemetry=None,
        event_sink=None,
    ) -> None:
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.shards: List[SupervisorShard] = [
            SupervisorShard(
                index,
                strict=strict,
                telemetry=telemetry,
                event_sink=event_sink,
            )
            for index in range(shards)
        ]
        self._shard_of: Dict[str, SupervisorShard] = {}
        self._next_shard = 0
        self.state = MonitorState.OK
        self.state_changes: List[EcuStateChange] = []
        self._fleet_state_listeners: List[Callable[[EcuStateChange], None]] = []
        for shard in self.shards:
            shard.add_detection_listener(self._forward_detection)
            shard.add_task_fault_listener(self._forward_task_fault)
        self._detection_listeners: List[Callable[[str, RunnableError], None]] = []
        self._task_fault_listeners: List[Callable[[str, Any], None]] = []

    # ------------------------------------------------------------------
    # registration routing
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        hypothesis_dict: Dict[str, Any],
        *,
        app_of_task: Optional[Dict[str, str]] = None,
    ) -> Registration:
        """Admit (or rebind) one registration, round-robin across shards."""
        shard = self._shard_of.get(name)
        if shard is None:
            shard = self.shards[self._next_shard]
            registration = shard.register(
                name, hypothesis_dict, app_of_task=app_of_task
            )
            # Only claim the slot once the shard admitted the
            # hypothesis — a rejected REGISTER must not skew the
            # round-robin placement of the next client.
            self._shard_of[name] = shard
            self._next_shard = (self._next_shard + 1) % len(self.shards)
            return registration
        return shard.register(name, hypothesis_dict, app_of_task=app_of_task)

    def registration(self, name: str) -> Optional[Registration]:
        shard = self._shard_of.get(name)
        if shard is None:
            return None
        return shard.registrations.get(name)

    def shard_for(self, name: str) -> Optional[SupervisorShard]:
        """The shard hosting ``name`` (``None`` if unregistered)."""
        return self._shard_of.get(name)

    def deregister(self, name: str) -> None:
        self._shard_of[name].deregister(name)

    @property
    def registrations(self) -> Dict[str, Registration]:
        """All registrations across shards, in registration order."""
        merged: Dict[str, Registration] = {}
        for shard in self.shards:
            merged.update(shard.registrations)
        return merged

    # ------------------------------------------------------------------
    # supervised interfaces
    # ------------------------------------------------------------------
    def heartbeat(
        self, registration: str, runnable: str, time: int,
        task: Optional[str] = None,
    ) -> None:
        shard = self._shard_of.get(registration)
        if shard is not None:
            shard.heartbeat(registration, runnable, time, task)

    def task_start(self, registration: str, task: str) -> None:
        shard = self._shard_of.get(registration)
        if shard is not None:
            shard.task_start(registration, task)

    def tick(self, time: int) -> List[Tuple[str, RunnableError]]:
        """One check cycle over every shard, then the state rollup."""
        errors: List[Tuple[str, RunnableError]] = []
        for shard in self.shards:
            errors.extend(shard.tick(time))
        self._roll_up(time)
        return errors

    # ------------------------------------------------------------------
    # rollup
    # ------------------------------------------------------------------
    def registration_states(self) -> Dict[str, MonitorState]:
        """Each registration's derived ECU state (its local rollup)."""
        return {
            name: entry.watchdog.ecu_state()
            for name, entry in self.registrations.items()
        }

    def task_states(self) -> Dict[str, Dict[str, MonitorState]]:
        """Task states of every registration, keyed by registration."""
        merged: Dict[str, Dict[str, MonitorState]] = {}
        for shard in self.shards:
            merged.update(shard.task_states())
        return merged

    def fleet_state(self) -> MonitorState:
        """Worst state over every registration (the service verdict)."""
        return _worst(self.registration_states().values())

    def _roll_up(self, time: int) -> None:
        new_state = self.fleet_state()
        if new_state is self.state:
            return
        faulty = tuple(
            f"{registration}.{task}"
            for registration, tasks in self.task_states().items()
            for task, state in tasks.items()
            if state is MonitorState.FAULTY
        )
        change = EcuStateChange(
            time=time,
            old_state=self.state,
            new_state=new_state,
            faulty_tasks=faulty,
        )
        self.state = new_state
        self.state_changes.append(change)
        for listener in self._fleet_state_listeners:
            listener(change)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-compatible fleet state: every shard's snapshot plus
        the routing table, round-robin cursor and rollup history."""
        return {
            "shards": [shard.snapshot() for shard in self.shards],
            "shard_of": {
                name: shard.index for name, shard in self._shard_of.items()
            },
            "next_shard": self._next_shard,
            "state": self.state.value,
            "state_changes": [
                change.to_dict() for change in self.state_changes
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild the fleet from a :meth:`snapshot` capture.

        The shard count must match the captured one — the state
        directory pins the daemon's ``--shards`` topology, because
        registrations were placed (and their indications routed) by
        shard index.  The fleet must be empty.
        """
        if self._shard_of:
            raise ValueError("restore() needs an empty fleet")
        captured = state["shards"]
        if len(captured) != len(self.shards):
            raise ValueError(
                f"snapshot was taken with {len(captured)} shards, this "
                f"daemon runs {len(self.shards)} — restart with the "
                "original --shards value"
            )
        for shard, shard_state in zip(self.shards, captured):
            shard.restore(shard_state)
        self._shard_of = {
            name: self.shards[index]
            for name, index in state["shard_of"].items()
        }
        self._next_shard = int(state["next_shard"]) % len(self.shards)
        self.state = MonitorState(state["state"])
        self.state_changes = [
            EcuStateChange.from_dict(change)
            for change in state["state_changes"]
        ]

    # ------------------------------------------------------------------
    # push channels
    # ------------------------------------------------------------------
    def add_detection_listener(
        self, listener: Callable[[str, RunnableError], None]
    ) -> None:
        """Subscribe to every detection: ``(registration name, error)``."""
        self._detection_listeners.append(listener)

    def add_task_fault_listener(
        self, listener: Callable[[str, Any], None]
    ) -> None:
        self._task_fault_listeners.append(listener)

    def add_fleet_state_listener(
        self, listener: Callable[[EcuStateChange], None]
    ) -> None:
        self._fleet_state_listeners.append(listener)

    def attach_fmf(self, fmf) -> None:
        """Feed detections and task faults into a Fault Management
        Framework instance (observe-only unless it has ECU actions)."""
        self.add_detection_listener(
            lambda _name, error: fmf.on_runnable_error(error)
        )
        self.add_task_fault_listener(
            lambda _name, event: fmf.on_task_fault(event)
        )

    def _forward_detection(self, registration: str, error: RunnableError) -> None:
        for listener in self._detection_listeners:
            listener(registration, error)

    def _forward_task_fault(self, registration: str, event) -> None:
        for listener in self._task_fault_listeners:
            listener(registration, event)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        regs = self.registrations
        return {
            "shards": len(self.shards),
            "registrations": len(regs),
            "active_registrations": sum(1 for r in regs.values() if r.active),
            "indications": sum(r.indications for r in regs.values()),
            "task_starts": sum(r.task_starts for r in regs.values()),
            "detections": sum(r.detections for r in regs.values()),
            "ticks": max((s.tick_count for s in self.shards), default=0),
            "fleet_state": self.state.value,
        }
