"""Durable state for the supervision daemon — snapshots plus a journal.

A dependability service must itself be dependable (De Florio's
"recovery language" critique): a daemon restart that forgets every
registration turns the watchdog into the least reliable component of
the system it guards.  This module gives ``repro serve`` a crash-safe
memory built from two complementary pieces:

* **point-in-time snapshots** — the full fleet state
  (:meth:`repro.service.fleet.Fleet.snapshot`: registrations, Activation
  Status, HBM/ARC/TSI counter blocks, wheel deadlines, rollup history)
  written atomically (temp file + ``os.replace``) so a crash mid-write
  can never corrupt the previous good snapshot;
* **an append-only journal** of *state-changing* control frames —
  REGISTER, BYE, and activation rebinds.  Heartbeats are deliberately
  not journaled: the hot path stays untouched, and a lost heartbeat is
  exactly a missed heartbeat, which the watchdog detects by design.
  Journal records are ordinary versioned
  :class:`~repro.telemetry.TelemetryEvent` lines (the ``time`` field
  carries the monotonic journal sequence number), so replay reuses the
  crash-truncation-tolerant :func:`repro.telemetry.read_jsonl` — a
  daemon killed mid-append leaves at most one partial trailing line,
  which is silently discarded.

Recovery is ``snapshot + journal``: load the newest snapshot, then
re-apply every journal record with a sequence number beyond it.  After
each successful snapshot the journal is truncated (records the snapshot
already covers are dead weight); sequence numbers stay monotonic across
truncations so a record is never applied twice.

:class:`JournalFollower` is the warm-standby side of the same files: a
second daemon points it at the primary's state directory, adopts new
snapshots and tails new journal records as they appear, and uses the
:meth:`StateStore.primary_alive` lock-file check to decide when the
primary died and promotion is due.
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry import JsonlFileSink, TelemetryEvent, read_jsonl

__all__ = [
    "JOURNAL_ACTIVATION",
    "JOURNAL_BYE",
    "JOURNAL_REGISTER",
    "JournalFollower",
    "RestoredState",
    "SNAPSHOT_SCHEMA_VERSION",
    "StateStore",
]

#: Version stamped into every snapshot; bump on incompatible changes.
SNAPSHOT_SCHEMA_VERSION = 1

#: Journal record kinds (the state-changing control-plane frames).
JOURNAL_REGISTER = "journal.register"
JOURNAL_BYE = "journal.bye"
JOURNAL_ACTIVATION = "journal.activation"

_SNAPSHOT_FILE = "snapshot.json"
_SNAPSHOT_TMP = "snapshot.json.tmp"
_JOURNAL_FILE = "journal.jsonl"
_LOCK_FILE = "primary.json"
_LOCK_TMP = "primary.json.tmp"

#: A lock advertising a refresh cadence that has not been re-stamped
#: for this many intervals is stale regardless of PID liveness — the OS
#: may have recycled the dead primary's PID for an unrelated process.
_LOCK_STALE_REFRESHES = 4.0


@dataclass
class RestoredState:
    """What :meth:`StateStore.load` found on disk.

    ``snapshot`` is the newest snapshot payload (``None`` when the
    daemon never snapshotted), ``entries`` the journal records *beyond*
    it, in sequence order — apply the snapshot first, then the entries.
    """

    snapshot: Optional[Dict[str, Any]] = None
    entries: List[TelemetryEvent] = field(default_factory=list)
    #: Highest sequence number seen on disk (snapshot or journal).
    seq: int = 0

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.entries


class StateStore:
    """Snapshot + journal management for one state directory."""

    def __init__(self, state_dir: str, *, fsync: bool = False) -> None:
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.fsync = fsync
        self.snapshot_path = os.path.join(self.state_dir, _SNAPSHOT_FILE)
        self.journal_path = os.path.join(self.state_dir, _JOURNAL_FILE)
        self.lock_path = os.path.join(self.state_dir, _LOCK_FILE)
        #: Last journal sequence number written (monotonic across
        #: snapshots and daemon restarts).
        self.seq = 0
        self.snapshots_written = 0
        self.entries_appended = 0
        self._journal: Optional[JsonlFileSink] = None
        self._lock_payload: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # recovery side
    # ------------------------------------------------------------------
    def load(self) -> RestoredState:
        """Read the newest snapshot and the journal tail beyond it.

        Also advances :attr:`seq` past everything on disk, so records
        appended after a restore continue the sequence.
        """
        snapshot: Optional[Dict[str, Any]] = None
        snap_seq = 0
        if os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
            schema = snapshot.get("schema")
            if schema != SNAPSHOT_SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported snapshot schema {schema!r} in "
                    f"{self.snapshot_path}"
                )
            snap_seq = int(snapshot.get("seq", 0))
        entries: List[TelemetryEvent] = []
        if os.path.exists(self.journal_path):
            with open(self.journal_path, "r", encoding="utf-8") as handle:
                events = read_jsonl(handle)
            entries = [event for event in events if event.time > snap_seq]
            entries.sort(key=lambda event: event.time)
        self.seq = max(
            snap_seq, max((event.time for event in entries), default=0),
            self.seq,
        )
        return RestoredState(snapshot=snapshot, entries=entries, seq=self.seq)

    # ------------------------------------------------------------------
    # journal side
    # ------------------------------------------------------------------
    def append(self, kind: str, subject: str, **data: Any) -> TelemetryEvent:
        """Durably append one journal record; returns the written event.

        Every append is flushed immediately (the journal is the crash
        memory — a buffered record is a forgotten registration); with
        ``fsync=True`` it is also forced to stable storage.
        """
        self.seq += 1
        event = TelemetryEvent(
            time=self.seq, kind=kind, subject=subject, data=dict(data)
        )
        if self._journal is None:
            self._journal = JsonlFileSink(
                self.journal_path, mode="a", fsync=self.fsync
            )
        self._journal.emit(event)
        self._journal.flush()
        self.entries_appended += 1
        return event

    # ------------------------------------------------------------------
    # snapshot side
    # ------------------------------------------------------------------
    def write_snapshot(self, fleet_state: Dict[str, Any],
                       **extra: Any) -> Dict[str, Any]:
        """Atomically write a point-in-time snapshot, then truncate the
        journal (records the snapshot covers are dead weight).

        A crash between the two steps is safe: the snapshot carries the
        sequence number it covers, and recovery skips journal records at
        or below it.

        This is the synchronous composition of the three phases below;
        an event-loop caller captures the payload on-loop with
        :meth:`build_snapshot_payload`, offloads the blocking
        :meth:`write_snapshot_payload` to a thread, then truncates with
        :meth:`truncate_journal_through` back on-loop.
        """
        payload = self.build_snapshot_payload(fleet_state, **extra)
        self.write_snapshot_payload(payload)
        self.truncate_journal_through(int(payload["seq"]))
        return payload

    def build_snapshot_payload(self, fleet_state: Dict[str, Any],
                               **extra: Any) -> Dict[str, Any]:
        """Capture the snapshot payload (cheap, in-memory): the fleet
        state plus the sequence number this snapshot covers."""
        payload: Dict[str, Any] = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "seq": self.seq,
            "written_unix": _time.time(),
            "fleet": fleet_state,
        }
        payload.update(extra)
        return payload

    def write_snapshot_payload(self, payload: Dict[str, Any]) -> None:
        """The blocking half: serialize to a temp file, fsync, and
        atomically rename over the previous snapshot (a crash mid-write
        can never corrupt the last good one).  Thread-safe with respect
        to concurrent :meth:`append` calls — it touches only the
        snapshot files."""
        tmp_path = os.path.join(self.state_dir, _SNAPSHOT_TMP)
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self.snapshots_written += 1

    def truncate_journal_through(self, covered_seq: int) -> None:
        """Drop journal records at or below ``covered_seq``, keeping any
        appended after the snapshot payload was captured (they happened
        while an off-loop write was in flight and are NOT covered).

        An empty journal file (rather than an absent one) keeps the
        follower's bookkeeping simple: the path always exists once the
        store has been written to.
        """
        survivors: List[TelemetryEvent] = []
        if os.path.exists(self.journal_path):
            with open(self.journal_path, "r", encoding="utf-8") as handle:
                events = read_jsonl(handle)
            survivors = [e for e in events if e.time > covered_seq]
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        with open(self.journal_path, "w", encoding="utf-8"):
            pass
        if survivors:
            self._journal = JsonlFileSink(
                self.journal_path, mode="a", fsync=self.fsync
            )
            for event in survivors:
                self._journal.emit(event)
            self._journal.flush()

    # ------------------------------------------------------------------
    # primary liveness lock
    # ------------------------------------------------------------------
    def write_lock(self, **info: Any) -> None:
        """Advertise this process as the live primary of the state dir.

        Pass ``refresh_interval=<seconds>`` and call :meth:`refresh_lock`
        on that cadence to let a standby distinguish a live primary from
        a dead one whose PID the OS recycled for an unrelated process.
        """
        payload = {"pid": os.getpid(), "written_unix": _time.time()}
        payload.update(info)
        self._lock_payload = payload
        self._write_lock_payload()

    def refresh_lock(self) -> None:
        """Re-stamp the advertisement's timestamp (the primary's
        periodic heartbeat on its own lock).  A no-op before
        :meth:`write_lock`."""
        if self._lock_payload is None:
            return
        self._lock_payload["written_unix"] = _time.time()
        self._write_lock_payload()

    def _write_lock_payload(self) -> None:
        # Temp file + rename: a standby polling the lock concurrently
        # must never catch a torn write — a transiently unreadable lock
        # reads as "no primary", which after seen_alive would promote a
        # standby against a perfectly healthy primary (split brain).
        tmp_path = os.path.join(self.state_dir, _LOCK_TMP)
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self._lock_payload, handle)
        os.replace(tmp_path, self.lock_path)

    def read_lock(self) -> Optional[Dict[str, Any]]:
        """The current lock payload, or ``None`` (absent / unreadable —
        a half-written lock reads as "no primary", which is safe: the
        standby also requires the liveness probe to fail)."""
        try:
            with open(self.lock_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def clear_lock(self) -> None:
        """Remove the primary advertisement (clean shutdown)."""
        try:
            os.unlink(self.lock_path)
        except OSError:
            pass

    def primary_alive(self) -> Optional[bool]:
        """Probe the advertised primary: ``True`` if it is alive,
        ``False`` if it is provably dead (stale lock after a kill -9),
        ``None`` when no primary is advertised at all.

        A lock advertising a ``refresh_interval`` that has not been
        re-stamped for :data:`_LOCK_STALE_REFRESHES` intervals is dead
        regardless of PID liveness: PID recycling can hand the dead
        primary's number to an unrelated process, and without the
        timestamp check the standby would wait on that impostor forever.
        """
        lock = self.read_lock()
        if lock is None:
            return None
        refresh = lock.get("refresh_interval")
        if isinstance(refresh, (int, float)) and refresh > 0:
            written = lock.get("written_unix")
            if (not isinstance(written, (int, float))
                    or _time.time() - written
                    > refresh * _LOCK_STALE_REFRESHES):
                return False
        pid = lock.get("pid")
        if not isinstance(pid, int) or pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - alive, other user
            return True
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class JournalFollower:
    """Incrementally track a primary's state directory (warm standby).

    Each :meth:`poll` returns what changed since the last one:

    * a new snapshot payload when the primary wrote one (adopt it —
      it contains counter state the journal never carries), and
    * the journal records beyond everything already returned, in
      sequence order.

    File reads are guarded by ``stat`` signatures, so an idle primary
    costs the follower two ``stat`` calls per poll.  Journal truncation
    (the primary snapshotting) is handled by sequence numbers alone:
    records at or below :attr:`applied_seq` are never returned again.
    """

    def __init__(self, store: StateStore) -> None:
        self.store = store
        self.applied_seq = 0
        self.snapshots_adopted = 0
        self.entries_returned = 0
        self._snap_sig: Optional[Tuple[int, int]] = None
        self._journal_sig: Optional[Tuple[int, int]] = None

    @staticmethod
    def _signature(path: str) -> Optional[Tuple[int, int]]:
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def prime(self, applied_seq: int) -> None:
        """Mark everything currently on disk as already applied (the
        caller restored it through :meth:`StateStore.load`), so the
        first poll only returns genuinely new changes."""
        self.applied_seq = applied_seq
        self._snap_sig = self._signature(self.store.snapshot_path)
        self._journal_sig = self._signature(self.store.journal_path)

    def poll(self) -> Tuple[Optional[Dict[str, Any]], List[TelemetryEvent]]:
        """One follower step; see the class docstring for the contract."""
        snapshot: Optional[Dict[str, Any]] = None
        snap_sig = self._signature(self.store.snapshot_path)
        if snap_sig is not None and snap_sig != self._snap_sig:
            self._snap_sig = snap_sig
            try:
                with open(self.store.snapshot_path, "r",
                          encoding="utf-8") as handle:
                    candidate = json.load(handle)
            except (OSError, ValueError):
                # Mid-replace race or torn read; the next poll sees the
                # settled file (os.replace makes corruption transient).
                candidate = None
                self._snap_sig = None
            # >= rather than >: a snapshot at the already-applied seq
            # still supersedes journal-derived state (it carries the
            # counter blocks the journal never does), and the signature
            # guard already prevents re-reading an unchanged file.
            if (candidate is not None
                    and candidate.get("schema") == SNAPSHOT_SCHEMA_VERSION
                    and int(candidate.get("seq", 0)) >= self.applied_seq):
                snapshot = candidate
                self.applied_seq = int(candidate.get("seq", 0))
                self.snapshots_adopted += 1
        entries: List[TelemetryEvent] = []
        journal_sig = self._signature(self.store.journal_path)
        if journal_sig is not None and journal_sig != self._journal_sig:
            self._journal_sig = journal_sig
            try:
                with open(self.store.journal_path, "r",
                          encoding="utf-8") as handle:
                    events = read_jsonl(handle)
            except (OSError, ValueError):
                events = []
            entries = [e for e in events if e.time > self.applied_seq]
            entries.sort(key=lambda event: event.time)
            if entries:
                self.applied_seq = entries[-1].time
                self.entries_returned += len(entries)
        return snapshot, entries
