"""The asyncio supervision daemon.

Transport only: every supervision decision is made by the synchronous
core (:mod:`repro.service.supervisor` / :mod:`repro.service.fleet`);
this module moves frames.  Three design rules keep the daemon a
dependability service rather than a liability:

* **misbehaving clients cannot hurt the server** — a malformed payload
  is rejected with an error ACK and the connection survives (only
  corrupt *framing* closes it); an unannounced disconnect simply stops
  the heartbeat stream, which the watchdog reports as missed
  heartbeats — the service degrades into exactly the detection it
  exists to produce;
* **backpressure is bounded and observable** — each shard owns a
  bounded inbound queue; when a flood outruns the shard, the *oldest*
  indications are dropped (they are the stalest evidence) and every
  drop is counted in telemetry;
* **the check cycle is real time** — a ticker task drives
  ``fleet.tick()`` on a fixed wall-clock period, accounting every
  overrun in ``missed_ticks``; tests pass ``tick_interval=None`` and
  call :meth:`SupervisionServer.tick` themselves for determinism.

The daemon also serves HTTP ``GET /metrics`` (Prometheus text
exposition of the shared :class:`~repro.telemetry.MetricsRegistry`) and
``GET /healthz`` (a JSON health summary) from a tiny built-in HTTP/1.0
responder — no web framework, no dependency.
"""

from __future__ import annotations

import asyncio
import collections
import json
import os
import time as _time
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from ..core.reports import EcuStateChange, RunnableError, TaskFaultEvent
from ..telemetry import MetricsRegistry, NULL_SINK, TelemetryEvent
from .fleet import Fleet
from .persistence import (
    JOURNAL_ACTIVATION,
    JOURNAL_BYE,
    JOURNAL_REGISTER,
    JournalFollower,
    RestoredState,
    StateStore,
)
from .protocol import (
    FatalProtocolError,
    Frame,
    FrameDecoder,
    ProtocolError,
    T_ACK,
    T_BYE,
    T_DETECTION,
    T_FLOW,
    T_HEARTBEAT,
    T_HELLO,
    T_REGISTER,
    T_STATE,
    encode_frame,
)
from .supervisor import RegistrationError

__all__ = ["SupervisionServer"]

#: Bytes per socket read.
_READ_SIZE = 64 * 1024

#: Indications a shard drain applies before yielding to the event loop
#: (bounds how long a backlog can delay the check-cycle ticker).
_DRAIN_YIELD_EVERY = 64


class _DropOldestQueue:
    """Bounded FIFO with drop-oldest overflow and ``join()`` semantics.

    ``asyncio.Queue`` blocks producers when full; a supervision daemon
    must never let one flooding client stall the reader loop, so
    overflow evicts the oldest queued indication instead (stalest
    evidence first) and counts it.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self._items: Deque[Any] = collections.deque()
        self._limit = limit
        self._readable = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._unfinished = 0
        self.dropped = 0

    def put_nowait(self, item: Any) -> int:
        """Enqueue; returns the number of items evicted (0 or 1)."""
        evicted = 0
        if len(self._items) >= self._limit:
            self._items.popleft()
            self.dropped += 1
            # Eviction consumes the evicted item's join() obligation,
            # but must NOT route through _mark_done(): setting _idle
            # wakes pending join() waiters irrevocably, and the item
            # being enqueued right below is still unprocessed.  A full
            # queue guarantees _unfinished >= 1, so a bare decrement
            # (immediately re-incremented by the append) keeps the
            # count exact without ever touching the event.
            self._unfinished -= 1
            evicted = 1
        self._items.append(item)
        self._unfinished += 1
        self._idle.clear()
        self._readable.set()
        return evicted

    async def get(self) -> Any:
        while not self._items:
            self._readable.clear()
            await self._readable.wait()
        return self._items.popleft()

    def task_done(self) -> None:
        self._mark_done()

    def _mark_done(self) -> None:
        self._unfinished -= 1
        if self._unfinished <= 0:
            self._idle.set()

    async def join(self) -> None:
        await self._idle.wait()

    def __len__(self) -> int:
        return len(self._items)


class _Connection:
    """Per-connection state: the writer, the bound registrations."""

    _ids = 0

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        _Connection._ids += 1
        self.id = _Connection._ids
        self.writer = writer
        self.client_name: Optional[str] = None
        self.registrations: Set[str] = set()
        self.watching = False
        self.said_bye = False
        self.closed = False


class SupervisionServer:
    """The live supervision daemon (TCP and/or UNIX socket + HTTP)."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        http_port: Optional[int] = None,
        shards: int = 1,
        strict: bool = False,
        tick_interval: Optional[float] = 0.01,
        queue_limit: int = 10_000,
        telemetry: Optional[MetricsRegistry] = None,
        event_sink=None,
        name: str = "repro-supervisord",
        state_dir: Optional[str] = None,
        snapshot_interval: Optional[float] = 5.0,
        fsync: bool = False,
        standby: bool = False,
        standby_poll: float = 0.25,
        lock_refresh_interval: float = 1.0,
        on_promote=None,
    ) -> None:
        if port is None and unix_path is None:
            raise ValueError("need a TCP port and/or a UNIX socket path")
        if standby and state_dir is None:
            raise ValueError("--standby needs --state-dir (the journal it "
                             "tails is the primary's state directory)")
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive or None")
        self.name = name
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.http_port = http_port
        self.tick_interval = tick_interval
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.event_sink = event_sink if event_sink is not None else NULL_SINK
        self._strict = strict
        self.fleet = Fleet(
            shards,
            strict=strict,
            telemetry=self.telemetry,
            event_sink=self.event_sink,
        )
        self._queues: List[_DropOldestQueue] = [
            _DropOldestQueue(queue_limit) for _ in range(shards)
        ]
        self._conn_of: Dict[str, _Connection] = {}
        self._state_hooked: Set[str] = set()
        self._connections: Set[_Connection] = set()
        self._tasks: List[asyncio.Task] = []
        self._servers: List[asyncio.AbstractServer] = []
        self._started = False
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0: float = 0.0
        self.missed_ticks = 0
        self.pushes_dropped = 0
        self.handler_errors = 0
        self.snapshot_failures = 0

        # --- durable state (the restartable daemon) ---
        self.snapshot_interval = snapshot_interval
        self.standby = standby
        self.standby_poll = standby_poll
        self.lock_refresh_interval = lock_refresh_interval
        self.store: Optional[StateStore] = (
            StateStore(state_dir, fsync=fsync) if state_dir is not None
            else None
        )
        self.restored_registrations = 0
        self.promoted = False
        self._on_promote = on_promote
        self._follower: Optional[JournalFollower] = None
        self._lock_owned = False

        tm = self.telemetry
        self._tm_frames: Dict[str, Any] = {}
        self._tm_malformed = tm.counter(
            "service_malformed_frames_total",
            "Frames rejected by the wire-protocol decoder")
        self._tm_indications = tm.counter(
            "service_indications_total",
            "Heartbeat and flow indications accepted into shard queues")
        self._tm_dropped = tm.counter(
            "service_dropped_indications_total",
            "Indications evicted oldest-first by shard backpressure")
        self._tm_unknown = tm.counter(
            "service_unknown_registration_total",
            "Indications naming a registration the fleet does not know")
        self._tm_missed_ticks = tm.counter(
            "service_missed_ticks_total",
            "Check cycles the real-time ticker could not run on schedule")
        self._tm_connections = tm.gauge(
            "service_connections", "Currently open client connections")
        self._tm_registrations = tm.gauge(
            "service_registrations", "Registered (ever-seen) hypotheses")
        self._tm_disconnects: Dict[bool, Any] = {
            graceful: tm.counter(
                "service_disconnects_total",
                "Client disconnects by goodbye discipline",
                graceful=str(graceful).lower())
            for graceful in (True, False)
        }
        self._tm_tick_duration = tm.histogram(
            "service_tick_duration_seconds",
            "Wall-clock duration of one fleet check cycle")
        self._tm_pushes_dropped = tm.counter(
            "service_pushes_dropped_total",
            "DETECTION/STATE pushes dropped because no client was bound")
        self._tm_handler_errors = tm.counter(
            "service_handler_errors_total",
            "Indications whose shard handler raised (isolated, drain "
            "continues)")
        self._tm_journal_records = tm.counter(
            "service_journal_records_total",
            "State-changing frames appended to the durable journal")
        self._tm_snapshots = tm.counter(
            "service_snapshots_total",
            "Point-in-time state snapshots written to the state dir")
        self._tm_snapshot_failures = tm.counter(
            "service_snapshot_failures_total",
            "Periodic snapshot attempts that failed (the loop retries "
            "next interval)")
        self._tm_rebinds = tm.counter(
            "service_register_rebinds_total",
            "REGISTERs that rebound an existing registration (reconnect "
            "replay) instead of creating one")

        self.fleet.add_detection_listener(self._push_detection)
        self.fleet.add_task_fault_listener(self._push_task_fault)
        self.fleet.add_fleet_state_listener(self._push_fleet_state)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Restore durable state if any, then bind listeners and run.

        With ``standby=True`` no listener is bound: the daemon adopts
        whatever is already in the state directory, then tails the
        primary's snapshot/journal until the primary dies and
        :meth:`promote` turns it into a full server.  A connecting
        client sees connection-refused until promotion — exactly the
        signal that drives its failover address rotation.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._t0 = loop.time()
        if self.store is not None:
            restored = self.store.load()
            self._apply_restored(restored)
            if self.standby:
                self._follower = JournalFollower(self.store)
                self._follower.prime(restored.seq)
                self._tasks.append(loop.create_task(self._standby_loop()))
                self._started = True
                return
            self.store.write_lock(
                name=self.name, role="primary",
                refresh_interval=self.lock_refresh_interval,
            )
            self._lock_owned = True
        await self._bind_and_run()
        self._started = True

    async def _bind_and_run(self) -> None:
        """Bind listeners, start the shard drains, ticker and snapshots
        (the active-server half of startup, deferred in standby mode)."""
        loop = asyncio.get_running_loop()
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self.port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
            self._servers.append(server)
        if self.http_port is not None:
            server = await asyncio.start_server(
                self._handle_http, host=self.host, port=self.http_port
            )
            self.http_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        for shard, queue in zip(self.fleet.shards, self._queues):
            self._tasks.append(
                loop.create_task(self._drain_shard(shard, queue))
            )
        if self.tick_interval is not None:
            self._tasks.append(loop.create_task(self._ticker()))
        if self.store is not None and self.snapshot_interval is not None:
            self._tasks.append(loop.create_task(self._snapshot_loop()))
        if self.store is not None and self._lock_owned:
            self._tasks.append(loop.create_task(self._lock_refresh_loop()))

    async def stop(self, *, save: Optional[bool] = None) -> None:
        """Shut down cleanly: no task left pending, sockets unlinked.

        With a state directory, a final snapshot is written by default
        (``save=False`` suppresses it — the crash-simulation path tests
        use) and the primary lock is cleared so a standby can tell a
        clean shutdown from a crash.
        """
        self._stopping = True
        for server in self._servers:
            server.close()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for conn in list(self._connections):
            await self._close_connection(conn, graceful=conn.said_bye)
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        if self.store is not None:
            if save is None:
                save = not (self.standby and not self.promoted)
            if save:
                self.write_snapshot()
            if self._lock_owned:
                self.store.clear_lock()
            self.store.close()

    async def drain(self) -> None:
        """Wait until every queued indication has been applied."""
        await asyncio.gather(*(queue.join() for queue in self._queues))

    def now(self) -> int:
        """Server time in integer microseconds since start (the same
        integer-tick axis every simulated component uses)."""
        if self._loop is None:
            return 0
        return int((self._loop.time() - self._t0) * 1e6)

    def tick(self, time: Optional[int] = None) -> List[Tuple[str, RunnableError]]:
        """One fleet check cycle (the ticker's body; tests call it
        directly when ``tick_interval=None``)."""
        started = _time.perf_counter()
        errors = self.fleet.tick(self.now() if time is None else time)
        self._tm_tick_duration.observe(_time.perf_counter() - started)
        return errors

    async def _ticker(self) -> None:
        loop = asyncio.get_running_loop()
        period = self.tick_interval
        next_at = loop.time() + period
        while True:
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            late = loop.time() - next_at
            if late > period:
                missed = int(late // period)
                self.missed_ticks += missed
                self._tm_missed_ticks.inc(missed)
                next_at += period * missed
            self.tick()
            next_at += period

    async def _drain_shard(
        self, shard, queue: _DropOldestQueue
    ) -> None:
        processed = 0
        while True:
            item = await queue.get()
            try:
                if item[0] == "hb":
                    shard.heartbeat(item[1], item[2], item[3], item[4])
                else:
                    shard.task_start(item[1], item[2])
            except Exception:
                # One poisoned indication must not kill the drain task —
                # a dead drain leaves the queue unconsumed forever and
                # hangs every later join()/drain().  Count and continue.
                self.handler_errors += 1
                self._tm_handler_errors.inc()
            finally:
                queue.task_done()
            # queue.get() is synchronous while items are queued; yield
            # periodically so a deep backlog cannot starve the ticker.
            processed += 1
            if processed % _DRAIN_YIELD_EVERY == 0:
                await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # durable state: restore, journal, snapshots, warm standby
    # ------------------------------------------------------------------
    def _apply_restored(self, restored: RestoredState) -> None:
        """Rebuild the fleet from disk: snapshot first, then every
        journal record beyond it, in sequence order."""
        if restored.empty:
            return
        if restored.snapshot is not None:
            self.fleet.restore(restored.snapshot["fleet"])
        for event in restored.entries:
            self._apply_journal_entry(event)
        self._hook_restored()

    def _apply_journal_entry(self, event: TelemetryEvent) -> None:
        """Re-apply one journaled control-plane frame.

        Replay is deterministic because the snapshot restores the
        round-robin cursor: a replayed REGISTER lands on the same shard
        it did live.  Unknown kinds are ignored (forward compatibility,
        like telemetry consumers)."""
        if event.kind == JOURNAL_REGISTER:
            try:
                self.fleet.register(
                    event.subject, event.data["hypothesis"],
                    app_of_task=event.data.get("app_of_task"),
                )
            except RegistrationError:
                # Journaled only after live acceptance; a replay
                # conflict means the record is already covered.
                pass
        elif event.kind == JOURNAL_BYE:
            if self.fleet.shard_for(event.subject) is not None:
                self.fleet.deregister(event.subject)
        elif event.kind == JOURNAL_ACTIVATION:
            registration = self.fleet.registration(event.subject)
            if registration is not None:
                if event.data.get("active", True):
                    registration.reactivate()
                else:
                    registration.deactivate()

    def _hook_restored(self) -> None:
        """Wire push-channel listeners for every restored registration
        (what :meth:`_handle_register` does for live ones) and refresh
        the restore bookkeeping."""
        for name, registration in self.fleet.registrations.items():
            self._hook_registration(name, registration)
        self.restored_registrations = len(self.fleet.registrations)
        self._tm_registrations.set(len(self.fleet.registrations))

    def _journal(self, kind: str, subject: str, **data: Any) -> None:
        if self.store is None:
            return
        self.store.append(kind, subject, **data)
        self._tm_journal_records.inc()

    def write_snapshot(self) -> Optional[Dict[str, Any]]:
        """Write a point-in-time snapshot now, synchronously (the final
        act of a clean :meth:`stop`; tests call it directly).  The
        periodic loop uses :meth:`_write_snapshot_async` instead so the
        blocking file I/O stays off the event loop."""
        if self.store is None:
            return None
        payload = self.store.write_snapshot(
            self.fleet.snapshot(), name=self.name
        )
        self._tm_snapshots.inc()
        return payload

    async def _write_snapshot_async(self) -> Optional[Dict[str, Any]]:
        """One periodic snapshot with the blocking half off-loop.

        The fleet state is serialized on-loop (the fleet is only ever
        mutated on-loop), the ``json.dump`` + ``fsync`` + rename goes to
        a worker thread so a large fleet cannot stall heartbeat draining
        or the check-cycle ticker, and the journal is truncated back
        on-loop afterwards — keeping any records appended while the
        thread was writing (their seq is beyond the snapshot's), so a
        concurrent REGISTER/BYE is never lost to the truncation."""
        if self.store is None:
            return None
        payload = self.store.build_snapshot_payload(
            self.fleet.snapshot(), name=self.name
        )
        await asyncio.to_thread(self.store.write_snapshot_payload, payload)
        self.store.truncate_journal_through(int(payload["seq"]))
        self._tm_snapshots.inc()
        return payload

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                await self._write_snapshot_async()
            except asyncio.CancelledError:
                raise
            except Exception:
                # One failed write (ENOSPC, a transient I/O error on the
                # state dir) must not kill the loop: durability would
                # silently degrade to journal-only and the journal would
                # never be truncated again.  Count it; retry next cycle.
                self.snapshot_failures += 1
                self._tm_snapshot_failures.inc()

    async def _lock_refresh_loop(self) -> None:
        """Periodically re-stamp the primary lock so a standby can tell
        a live primary from a dead one whose PID the OS recycled."""
        while True:
            await asyncio.sleep(self.lock_refresh_interval)
            try:
                self.store.refresh_lock()
            except OSError:
                # A transient I/O failure must not kill the heartbeat;
                # the staleness threshold tolerates several misses.
                pass

    def _rebuild_fleet(self) -> None:
        """Replace the fleet with an empty, fully re-wired one (the
        standby adopting a newer snapshot: counter state in the snapshot
        supersedes everything, so incremental patching is wrong)."""
        self.fleet = Fleet(
            len(self.fleet.shards),
            strict=self._strict,
            telemetry=self.telemetry,
            event_sink=self.event_sink,
        )
        self.fleet.add_detection_listener(self._push_detection)
        self.fleet.add_task_fault_listener(self._push_task_fault)
        self.fleet.add_fleet_state_listener(self._push_fleet_state)
        self._state_hooked.clear()

    async def _standby_loop(self) -> None:
        """Tail the primary's state dir; promote when the primary dies.

        Death is either a provably-dead advertised PID (stale lock after
        kill -9) or a lock that vanished after we saw the primary alive
        (clean shutdown without a restart).  A standby started against a
        state dir that never had a primary keeps waiting — promotion on
        an empty dir would split-brain a slow-starting primary."""
        seen_alive = False
        while True:
            if self.promoted:
                return
            snapshot, entries = self._follower.poll()
            if snapshot is not None:
                self._rebuild_fleet()
                self.fleet.restore(snapshot["fleet"])
                self._hook_restored()
            for event in entries:
                self._apply_journal_entry(event)
            if entries:
                self._hook_restored()
            # Keep the append cursor in lockstep with the follower:
            # store.seq was last set by load() at startup, and every
            # record applied since came through the follower.  Without
            # this, post-promotion appends would reuse sequence numbers
            # the dead primary already journaled (or fall at-or-below
            # the adopted snapshot's seq), and the next recovery would
            # silently drop them.
            self.store.seq = max(self.store.seq, self._follower.applied_seq)
            alive = self.store.primary_alive()
            if alive is True:
                seen_alive = True
            elif alive is False or seen_alive:
                await self.promote()
                return
            await asyncio.sleep(self.standby_poll)

    async def promote(self) -> None:
        """Turn a standby into the live server: final journal catch-up,
        take the primary lock, bind listeners, start drains/ticker/
        snapshots.  Idempotent; a no-op on a non-standby server."""
        if self.promoted or not self.standby:
            return
        if self._follower is not None:
            snapshot, entries = self._follower.poll()
            if snapshot is not None:
                self._rebuild_fleet()
                self.fleet.restore(snapshot["fleet"])
            for event in entries:
                self._apply_journal_entry(event)
            self._hook_restored()
            # Adopt the follower's position as the append cursor, so
            # records journaled after promotion continue the primary's
            # sequence instead of reusing it (a reused seq sorts
            # at-or-below the on-disk snapshot and is dropped by the
            # next recovery).
            self.store.seq = max(self.store.seq, self._follower.applied_seq)
        self.promoted = True
        self.standby = False
        self.store.write_lock(
            name=self.name, role="promoted-standby",
            refresh_interval=self.lock_refresh_interval,
        )
        self._lock_owned = True
        await self._bind_and_run()
        if self._on_promote is not None:
            self._on_promote(self)

    # ------------------------------------------------------------------
    # wire protocol connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self._tm_connections.inc()
        decoder = FrameDecoder()
        try:
            while not conn.closed:
                chunk = await reader.read(_READ_SIZE)
                if not chunk:
                    break
                try:
                    items = decoder.feed(chunk)
                except FatalProtocolError as exc:
                    self._tm_malformed.inc()
                    self._send(conn, T_ACK, ok=False, re=None, error=str(exc))
                    break
                for item in items:
                    if isinstance(item, ProtocolError):
                        self._tm_malformed.inc()
                        self._send(
                            conn, T_ACK, ok=False, re=None, error=str(item)
                        )
                        continue
                    self._dispatch(conn, item)
                    if conn.said_bye:
                        break
                if conn.said_bye:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Only stop() cancels connection readers; exiting quietly
            # keeps shutdown free of "exception was never retrieved"
            # noise from the streams machinery.
            pass
        finally:
            await self._close_connection(conn, graceful=conn.said_bye)

    def _dispatch(self, conn: _Connection, frame: Frame) -> None:
        counter = self._tm_frames.get(frame.type)
        if counter is None:
            counter = self.telemetry.counter(
                "service_frames_total",
                "Decoded protocol frames by type", type=frame.type)
            self._tm_frames[frame.type] = counter
        counter.inc()
        if frame.type == T_HELLO:
            conn.client_name = str(frame.get("client", "") or f"conn{conn.id}")
            # watch=true subscribes this connection to every DETECTION
            # (monitoring clients); default is own-registrations only.
            conn.watching = bool(frame.get("watch", False))
            self._send(conn, T_ACK, ok=True, re=T_HELLO, server=self.name)
        elif frame.type == T_REGISTER:
            self._handle_register(conn, frame)
        elif frame.type == T_HEARTBEAT:
            self._handle_indications(conn, frame, kind="hb")
        elif frame.type == T_FLOW:
            self._handle_indications(conn, frame, kind="flow")
        elif frame.type == T_BYE:
            for name in sorted(conn.registrations):
                self.fleet.deregister(name)
                self._journal(JOURNAL_BYE, name)
            conn.said_bye = True
            self._send(conn, T_ACK, ok=True, re=T_BYE)
        else:  # a server-only type sent by a client
            self._send(
                conn, T_ACK, ok=False, re=frame.type,
                error=f"clients may not send {frame.type} frames",
            )

    def _handle_register(self, conn: _Connection, frame: Frame) -> None:
        name = frame.get("name")
        hypothesis = frame.get("hypothesis")
        if not isinstance(name, str) or not name:
            self._send(conn, T_ACK, ok=False, re=T_REGISTER,
                       error="REGISTER needs a non-empty string 'name'")
            return
        if not isinstance(hypothesis, dict):
            self._send(conn, T_ACK, ok=False, re=T_REGISTER, name=name,
                       error="REGISTER needs a 'hypothesis' object")
            return
        app_of_task = frame.get("app_of_task")
        if app_of_task is not None and not isinstance(app_of_task, dict):
            self._send(conn, T_ACK, ok=False, re=T_REGISTER, name=name,
                       error="'app_of_task' must be an object")
            return
        rebound = self.fleet.registration(name) is not None
        try:
            registration = self.fleet.register(
                name, hypothesis, app_of_task=app_of_task
            )
        except RegistrationError as exc:
            self._send(conn, T_ACK, ok=False, re=T_REGISTER, name=name,
                       error=str(exc), lint=exc.reasons)
            return
        bound = self._conn_of.get(name)
        if bound is not None and bound is not conn:
            # A reconnecting client replays REGISTER before the server
            # has noticed the old connection die (half-open TCP).  The
            # shard already vetted the hypothesis as identical, so this
            # is the same client back — the new connection takes over
            # and the stale binding is dropped, not an error.
            bound.registrations.discard(name)
        registration.connected = True
        conn.registrations.add(name)
        self._conn_of[name] = conn
        self._tm_registrations.set(len(self.fleet.registrations))
        self._hook_registration(name, registration)
        if rebound:
            self._tm_rebinds.inc()
            self._journal(JOURNAL_ACTIVATION, name, active=True)
        else:
            self._journal(
                JOURNAL_REGISTER, name,
                hypothesis=dict(registration.hypothesis_dict),
                app_of_task=(
                    dict(app_of_task) if app_of_task is not None else None
                ),
            )
        self._send(
            conn, T_ACK, ok=True, re=T_REGISTER, name=name,
            shard=registration.shard_index, rebound=rebound,
            lint=list(registration.lint_diagnostics),
        )

    def _hook_registration(self, name: str, registration) -> None:
        """Subscribe the push channel to one registration's ECU state
        transitions (once per registration, survives rebinds)."""
        if name in self._state_hooked:
            return
        self._state_hooked.add(name)
        registration.watchdog.tsi.add_ecu_state_listener(
            lambda change, _name=name: self._push_ecu_state(_name, change)
        )

    def _handle_indications(
        self, conn: _Connection, frame: Frame, *, kind: str
    ) -> None:
        name = frame.get("name")
        shard = self.fleet.shard_for(name) if isinstance(name, str) else None
        if shard is None:
            self._tm_unknown.inc()
            return
        batch = frame.get("batch")
        if not isinstance(batch, list):
            self._tm_malformed.inc()
            self._send(conn, T_ACK, ok=False, re=frame.type, name=name,
                       error="indication frames need a 'batch' list")
            return
        queue = self._queues[shard.index]
        stamp = None
        for entry in batch:
            if kind == "hb":
                if (not isinstance(entry, (list, tuple)) or len(entry) != 3
                        or not isinstance(entry[0], str)):
                    self._tm_malformed.inc()
                    continue
                runnable, at, task = entry
                if at is None:
                    if stamp is None:
                        stamp = self.now()
                    at = stamp
                if not isinstance(at, int) or isinstance(at, bool):
                    self._tm_malformed.inc()
                    continue
                item = ("hb", name, runnable, at, task)
            else:
                if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                        or not isinstance(entry[0], str)):
                    self._tm_malformed.inc()
                    continue
                item = ("flow", name, entry[0])
            self._tm_indications.inc()
            if queue.put_nowait(item):
                self._tm_dropped.inc()

    # ------------------------------------------------------------------
    # push channels (server → client frames)
    # ------------------------------------------------------------------
    def _push(self, registration: str, type: str, **data: Any) -> None:
        conn = self._conn_of.get(registration)
        if conn is None or conn.closed:
            self.pushes_dropped += 1
            self._tm_pushes_dropped.inc()
            return
        self._send(conn, type, name=registration, **data)

    def _push_detection(self, registration: str, error: RunnableError) -> None:
        data = dict(
            time=error.time, runnable=error.runnable, task=error.task,
            error_type=error.error_type.value,
            details=dict(error.details or {}),
        )
        self._push(registration, T_DETECTION, **data)
        owner = self._conn_of.get(registration)
        for conn in self._connections:
            if conn.watching and conn is not owner and not conn.closed:
                self._send(conn, T_DETECTION, name=registration, **data)

    def _push_task_fault(self, registration: str, event: TaskFaultEvent) -> None:
        self._push(
            registration, T_STATE, scope="task", subject=event.task,
            state="faulty", time=event.time,
            trigger_runnable=event.trigger_runnable,
            trigger_error_type=event.trigger_error_type.value,
        )

    def _push_ecu_state(self, registration: str, change: EcuStateChange) -> None:
        self._push(
            registration, T_STATE, scope="ecu", subject=registration,
            state=change.new_state.value, old_state=change.old_state.value,
            time=change.time, faulty_tasks=list(change.faulty_tasks),
        )

    def _push_fleet_state(self, change: EcuStateChange) -> None:
        for conn in self._connections:
            if not conn.closed and conn.registrations:
                self._send(
                    conn, T_STATE, scope="fleet", subject=self.name,
                    state=change.new_state.value,
                    old_state=change.old_state.value,
                    time=change.time, faulty_tasks=list(change.faulty_tasks),
                )

    def _send(self, conn: _Connection, type: str, **data: Any) -> bool:
        if conn.closed:
            return False
        try:
            conn.writer.write(encode_frame(type, **data))
        except (ConnectionError, RuntimeError):
            conn.closed = True
            return False
        return True

    async def _close_connection(self, conn: _Connection, *, graceful: bool) -> None:
        if conn not in self._connections:
            return
        self._connections.discard(conn)
        self._tm_connections.dec()
        self._tm_disconnects[graceful].inc()
        for name in conn.registrations:
            registration = self.fleet.registration(name)
            if registration is not None:
                registration.connected = False
            if self._conn_of.get(name) is conn:
                del self._conn_of[name]
            # Not graceful: the registration stays ACTIVE, so the now
            # silent runnables accumulate missed heartbeats and the
            # watchdog derives the fault — the required degradation.
        conn.closed = True
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # HTTP: /metrics and /healthz
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        stats = self.fleet.stats()
        stats.update(
            status="ok",
            server=self.name,
            uptime_us=self.now() if self._started else 0,
            connections=len(self._connections),
            queued=sum(len(queue) for queue in self._queues),
            dropped=sum(queue.dropped for queue in self._queues),
            missed_ticks=self.missed_ticks,
            handler_errors=self.handler_errors,
            role=("standby" if self.standby
                  else "promoted" if self.promoted else "primary"),
        )
        if self.store is not None:
            stats.update(
                state_dir=self.store.state_dir,
                journal_seq=self.store.seq,
                snapshots_written=self.store.snapshots_written,
                snapshot_failures=self.snapshot_failures,
                restored_registrations=self.restored_registrations,
            )
        return stats

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1].split("?", 1)[0] if len(parts) > 1 else ""
            if method != "GET":
                status, ctype, body = "405 Method Not Allowed", "text/plain", \
                    "only GET is supported\n"
            elif path == "/metrics":
                for registration in self.fleet.registrations.values():
                    registration.watchdog.sync_telemetry()
                status, ctype, body = ("200 OK",
                                       "text/plain; version=0.0.4",
                                       self.telemetry.render_prometheus())
            elif path == "/healthz":
                status, ctype, body = ("200 OK", "application/json",
                                       json.dumps(self.health(),
                                                  sort_keys=True) + "\n")
            else:
                status, ctype, body = ("404 Not Found", "text/plain",
                                       f"no route for {path}\n")
            payload = body.encode("utf-8")
            writer.write(
                (f"HTTP/1.0 {status}\r\n"
                 f"Content-Type: {ctype}\r\n"
                 f"Content-Length: {len(payload)}\r\n"
                 "Connection: close\r\n\r\n").encode("latin-1") + payload
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
