"""Live supervision service — the watchdog as an actual network service.

Everything else in this repository supervises *simulated* runnables
against a virtual clock.  This package realizes the paper's framing of
the Software Watchdog as a *dependability software service* literally:
a long-running asyncio daemon that real, out-of-process clients register
with and heartbeat into over a socket.

* :mod:`repro.service.protocol` — versioned, length-delimited JSON wire
  protocol (HELLO/REGISTER/HEARTBEAT/FLOW/BYE requests, ACK/DETECTION/
  STATE server frames),
* :mod:`repro.service.supervisor` — the synchronous supervision core:
  :class:`SupervisorShard` wraps one wheel-strategy
  :class:`~repro.core.watchdog.SoftwareWatchdog` per registration and
  lints hypotheses on REGISTER,
* :mod:`repro.service.fleet` — shards registrations across N shards and
  rolls their task states up into the existing ECU/FMF state machine,
* :mod:`repro.service.server` — the asyncio TCP + UNIX-socket daemon
  with per-shard backpressure, a real-time check-cycle ticker and an
  HTTP ``/metrics`` + ``/healthz`` endpoint,
* :mod:`repro.service.client` — :class:`WatchdogClient`, the glue-code
  SDK (indication batching, reconnect with exponential backoff plus
  jitter, bounded offline buffer, failover address rotation),
* :mod:`repro.service.persistence` — the daemon's crash memory:
  atomic point-in-time snapshots plus an append-only journal of
  state-changing frames, with crash-truncation-tolerant replay and a
  :class:`JournalFollower` for warm-standby failover.

The daemon is the ``python -m repro serve`` subcommand; a differential
test pins the service path to the in-process path: the same indication
stream over a loopback socket and via direct ``heartbeat_indication()``
calls produces identical detections and task-state rollups.
"""

from .client import ClientError, RegistrationRejected, WatchdogClient
from .fleet import Fleet
from .persistence import (
    JournalFollower,
    RestoredState,
    SNAPSHOT_SCHEMA_VERSION,
    StateStore,
)
from .protocol import (
    FatalProtocolError,
    Frame,
    FrameDecoder,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
)
from .server import SupervisionServer
from .supervisor import (
    Registration,
    RegistrationError,
    SupervisorShard,
    build_watchdog,
)

__all__ = [
    "ClientError",
    "FatalProtocolError",
    "Fleet",
    "Frame",
    "FrameDecoder",
    "JournalFollower",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Registration",
    "RestoredState",
    "SNAPSHOT_SCHEMA_VERSION",
    "StateStore",
    "RegistrationError",
    "RegistrationRejected",
    "SupervisionServer",
    "SupervisorShard",
    "WatchdogClient",
    "build_watchdog",
]
