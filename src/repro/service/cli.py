"""``python -m repro serve`` — run the live supervision daemon.

Runs until SIGTERM/SIGINT (clean shutdown: listeners closed, tasks
awaited, UNIX socket unlinked, telemetry sink flushed and closed) or
until ``--run-seconds`` elapses (used by the smoke tests).  The bound
addresses are printed on startup — with ``--port 0`` / ``--http-port 0``
the OS picks free ports and the printed line is how a test harness
discovers them.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional

__all__ = ["add_serve_arguments", "run_serve"]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for TCP and HTTP listeners")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP listener port (0 = OS-assigned; "
                             "default 6060 unless --socket is given)")
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="additionally (or instead) listen on this "
                             "UNIX socket path")
    parser.add_argument("--http-port", type=int, default=None,
                        help="HTTP port for /metrics and /healthz "
                             "(0 = OS-assigned; default: TCP port + 1)")
    parser.add_argument("--shards", type=int, default=1,
                        help="supervisor shards (each drives its own "
                             "watchdogs and inbound queue)")
    parser.add_argument("--strict", action="store_true",
                        help="reject REGISTERs whose hypothesis has any "
                             "lint diagnostics (not just errors)")
    parser.add_argument("--tick-ms", type=float, default=10.0,
                        help="real-time check-cycle period in ms")
    parser.add_argument("--queue-limit", type=int, default=10_000,
                        help="per-shard inbound queue bound (oldest "
                             "dropped beyond it)")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="stream structured telemetry events to this "
                             "JSONL file (flushed every 64 events)")
    parser.add_argument("--state-dir", metavar="DIR", default=None,
                        help="durable state directory: snapshots + journal "
                             "are written here and restored on restart, so "
                             "the daemon survives its own death")
    parser.add_argument("--snapshot-interval", type=float, default=5.0,
                        metavar="SECONDS",
                        help="seconds between state snapshots (with "
                             "--state-dir; 0 disables periodic snapshots, "
                             "journal + shutdown snapshot remain)")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync every journal append (survives host "
                             "crashes, not just process crashes)")
    parser.add_argument("--standby", action="store_true",
                        help="warm standby: tail the primary's --state-dir "
                             "and bind the listeners only after the primary "
                             "dies (clients reach it via their failover "
                             "address list)")
    parser.add_argument("--run-seconds", type=float, default=None,
                        help="exit after this many seconds (smoke tests; "
                             "default: run until SIGTERM/SIGINT)")


def _banner(server, args: argparse.Namespace, *, verb: str) -> str:
    endpoints = []
    if server.port is not None:
        endpoints.append(f"tcp={server.host}:{server.port}")
    if server.unix_path is not None:
        endpoints.append(f"unix={server.unix_path}")
    if server.http_port is not None:
        endpoints.append(f"http={server.host}:{server.http_port}")
    line = (f"{server.name} {verb} {' '.join(endpoints)} "
            f"shards={len(server.fleet.shards)} strict={args.strict} "
            f"tick_ms={args.tick_ms:g}")
    if server.store is not None:
        line += (f" state_dir={server.store.state_dir}"
                 f" restored={server.restored_registrations}")
    return line


def run_serve(args: argparse.Namespace) -> int:
    port: Optional[int] = args.port
    if port is None and args.socket is None:
        port = 6060
    http_port = args.http_port
    if http_port is None and port is not None:
        http_port = port + 1 if port else 0
    try:
        asyncio.run(_serve(args, port=port, http_port=http_port))
    except KeyboardInterrupt:
        pass
    return 0


async def _serve(
    args: argparse.Namespace, *, port: Optional[int], http_port: Optional[int]
) -> None:
    from ..telemetry import JsonlFileSink
    from .server import SupervisionServer

    sink = None
    if args.telemetry:
        sink = JsonlFileSink(args.telemetry, flush_every=64)
    state_dir = getattr(args, "state_dir", None)
    snapshot_interval = getattr(args, "snapshot_interval", 5.0)
    server = SupervisionServer(
        host=args.host,
        port=port,
        unix_path=args.socket,
        http_port=http_port,
        shards=max(1, args.shards),
        strict=args.strict,
        tick_interval=args.tick_ms / 1000.0,
        queue_limit=args.queue_limit,
        event_sink=sink,
        state_dir=state_dir,
        snapshot_interval=(snapshot_interval if state_dir
                           and snapshot_interval > 0 else None),
        fsync=getattr(args, "fsync", False),
        standby=getattr(args, "standby", False),
        on_promote=lambda srv: print(
            _banner(srv, args, verb="promoted listening"), flush=True),
    )
    # Handlers go in before the banner: a supervisor that SIGTERMs the
    # daemon the instant it prints must still get the clean-stop path
    # (final snapshot + shutdown stats), not the default kill.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass

    await server.start()

    if server.standby:
        print(f"{server.name} standby state_dir={server.store.state_dir} "
              f"restored={server.restored_registrations}", flush=True)
    else:
        print(_banner(server, args, verb="listening"), flush=True)

    try:
        if args.run_seconds is not None:
            try:
                await asyncio.wait_for(stop.wait(), timeout=args.run_seconds)
            except asyncio.TimeoutError:
                pass
        else:
            await stop.wait()
    finally:
        await server.stop()
        stats = server.fleet.stats()
        stats["missed_ticks"] = server.missed_ticks
        print("shutdown " + " ".join(f"{k}={v}" for k, v in stats.items()),
              flush=True)
        if sink is not None:
            sink.close()
        sys.stdout.flush()
