# Test tiers for the Software Watchdog reproduction.
#
#   make test         tier-1: the full unit/integration suite (the gate)
#   make bench-smoke  tier-2: one fast iteration of each benchmark file,
#                     so benchmark code cannot silently rot
#   make bench        regenerate every table & figure (slow)

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: test bench-smoke bench all

test:
	$(PYTEST) -x -q

bench-smoke:
	$(PYTEST) benchmarks/ -m bench_smoke --benchmark-disable -q

bench:
	$(PYTEST) benchmarks/ --benchmark-only

all: test bench-smoke
