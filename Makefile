# Test tiers for the Software Watchdog reproduction.
#
#   make test         tier-1: the full unit/integration suite (the gate)
#   make lint         wdlint the shipped app hypotheses (fails on
#                     error-severity diagnostics)
#   make bench-smoke  tier-2: one fast iteration of each benchmark file,
#                     so benchmark code cannot silently rot
#   make bench        regenerate every table & figure (slow)
#   make metrics-smoke  exercise the telemetry CLI: both exporters must
#                     render and the Prometheus output must parse
#   make serve-smoke  tier-2: real `repro serve` daemon + two SDK
#                     clients + one induced crash -> detection
#   make ha-smoke     tier-2: kill -9 the daemon and restart it from its
#                     --state-dir; warm standby promotion + client
#                     failover

PYTEST = PYTHONPATH=src python -m pytest
REPRO = PYTHONPATH=src python -m repro

.PHONY: test lint bench-smoke bench metrics-smoke serve-smoke ha-smoke all

test:
	$(PYTEST) -x -q

lint:
	$(REPRO) lint safespeed safelane steer-by-wire

bench-smoke:
	$(PYTEST) benchmarks/ -m bench_smoke --benchmark-disable -q

bench:
	$(PYTEST) benchmarks/ --benchmark-only

metrics-smoke:
	$(REPRO) metrics rig --seconds 1 --format prometheus > /dev/null
	$(REPRO) metrics faulty --seconds 1 --format json > /dev/null

serve-smoke:
	$(PYTEST) tests/test_service_e2e.py -m serve_smoke -q

ha-smoke:
	$(PYTEST) tests/test_service_ha.py -m ha_smoke -q

all: test lint bench-smoke metrics-smoke serve-smoke ha-smoke
